//! Block-oriented sequential scanning of raw files, with I/O accounting.
//!
//! The paper observes that in row-ordered CSV, *selective tokenizing does not
//! bring any I/O benefits* — every query that touches uncached attributes
//! still streams the file once. [`BlockScanner`] is that streaming pass:
//! fixed-size block reads, line reassembly across block boundaries, and
//! byte/call/stall counters so the harness can report the *I/O* slice of the
//! paper's Figure 3 execution breakdown.
//!
//! # The `BlockSource` layer
//!
//! Where the blocks come from is pluggable. [`BlockScanner`] owns only the
//! line-reassembly state (a [`Window`] over the byte stream) and pulls
//! refills from a [`BlockSource`]:
//!
//! * [`SyncBlocks`] — blocking `read` calls on the scanning thread,
//!   byte-for-byte the original reader. Every block read stalls the
//!   tokenizer that could be chewing the previous block.
//! * [`ReadaheadBlocks`] — a double-buffered prefetcher: a helper thread
//!   reads ahead through its own file handle and keeps up to
//!   `readahead_blocks` blocks in flight on a bounded channel, so the
//!   scanner usually finds the next buffer already full and the disk wait
//!   overlaps tokenize/parse CPU. Blocks are handed over by pointer swap
//!   (each block carries [`BLOCK_HEADROOM`] spare bytes at its front for the
//!   previous block's unconsumed line tail), so the consumer never copies
//!   block bodies.
//!
//! **Why correctness is independent of buffer arrival order:** the helper
//! sends blocks through a single FIFO channel in exactly the order it reads
//! them, and it computes its read sizes with the same [`read_size_at`]
//! formula the synchronous source uses — so the *concatenated byte stream*
//! a scanner consumes is identical for every source and every readahead
//! depth. Line splitting, tokenizing and offset arithmetic only ever see
//! that stream through the [`Window`]; block boundaries (which is the only
//! thing prefetch timing can perturb) are invisible above the refill call.
//! The property tests in `tests/property_based.rs` pin this end to end:
//! every `{threads} × {readahead} × {steal}` combination leaves positional
//! map, cache and statistics byte-identical.
//!
//! Both sources account a third counter besides bytes/calls: [`IoCounters::
//! stall`], the time the *scanning thread* spent waiting for bytes (the full
//! `read` for [`SyncBlocks`], only the blocked channel wait for
//! [`ReadaheadBlocks`]), which is what finally separates "waiting on disk"
//! from "tokenizing" in the Figure-3-style breakdown.
//!
//! [`RawFileMeta`] is the cheap file fingerprint used by update detection
//! (§4.2 *Updates*): length, modification time, and a hash of the file head,
//! enough to distinguish "appended" from "replaced".

#![doc = " lint:cancellable — every scan/batch loop in this module must poll the"]
#![doc = " query context (`ctx.check()`) or drive an interrupt-flagged `BlockSource`;"]
#![doc = " enforced by `nodb-lint` (see crates/lint/README.md)."]

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use crate::error::RawCsvError;
use crate::tokenizer::{count_byte, find_byte, find_byte2, trim_cr, Tokens};
use crate::Result;

/// Default block size for sequential scans (1 MiB).
pub const DEFAULT_BLOCK_SIZE: usize = 1 << 20;

/// Cumulative I/O counters for one scanner (or one query, after
/// [`BlockScanner::take_counters`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoCounters {
    /// Total bytes handed back by the OS.
    pub bytes_read: u64,
    /// Number of `read` calls issued.
    pub read_calls: u64,
    /// Time the scanning thread spent *blocked waiting for bytes*: the
    /// whole `read` call for [`SyncBlocks`], only the channel wait for
    /// [`ReadaheadBlocks`] (whose reads happen on the helper thread). This
    /// is the "waiting on disk" slice of the execution breakdown — with
    /// read-ahead it shrinks toward zero while bytes/calls stay put.
    pub stall: Duration,
    /// Refills re-issued by [`RetryBlocks`] after a transient read error
    /// (injected or real). Zero on a healthy scan.
    pub retries: u64,
    /// Times a [`ReadaheadBlocks`] had to degrade to synchronous reads
    /// because its helper thread could not be spawned. Previously this
    /// fallback was silent; surfacing it lets telemetry explain why a scan
    /// that asked for read-ahead saw sync-like stall times.
    pub readahead_fallbacks: u64,
}

impl IoCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: IoCounters) {
        self.bytes_read += other.bytes_read;
        self.read_calls += other.read_calls;
        self.stall += other.stall;
        self.retries += other.retries;
        self.readahead_fallbacks += other.readahead_fallbacks;
    }
}

/// One line of the file as exposed by [`BlockScanner::next_line`].
#[derive(Debug, Clone, Copy)]
pub struct LineRef<'a> {
    /// Zero-based line number (header excluded if skipped by the caller).
    pub line_no: u64,
    /// Byte offset of the first byte of this line in the file.
    pub offset: u64,
    /// Line content without the trailing newline (and without `\r`).
    pub bytes: &'a [u8],
}

/// Streaming line reader over fixed-size blocks.
///
/// Usage:
/// ```no_run
/// # use nodb_rawcsv::reader::BlockScanner;
/// let mut scanner = BlockScanner::open("data.csv", 1 << 20).unwrap();
/// while let Some(line) = scanner.next_line().unwrap() {
///     let _ = (line.line_no, line.offset, line.bytes);
/// }
/// ```
pub struct BlockScanner {
    source: Box<dyn BlockSource>,
    win: Window,
    eof: bool,
    next_line_no: u64,
}

/// Read granularity beyond a [`BlockSource::set_read_cap`] cap (one page:
/// enough for the typical tail line in one step without over-reading into
/// the next scanner's slice). Also the smallest accepted block size.
const TAIL_READ: usize = 4096;

/// Spare bytes reserved at the front of every prefetched block so the
/// consumer can splice the previous block's unconsumed tail (at most one
/// partial line in the common case) in front of the fresh bytes and take
/// ownership of the block *without copying its body*.
const BLOCK_HEADROOM: usize = TAIL_READ;

/// The scanner-side view of the byte stream: a growable window where
/// `buf[pos..filled]` is the unconsumed bytes and `file_offset` is the file
/// position of `buf[0]` (bytes before `pos` may be garbage after a
/// zero-copy block swap — the window is only ever read through
/// `[pos, filled)`).
#[derive(Debug, Default)]
pub struct Window {
    /// Backing buffer.
    pub buf: Vec<u8>,
    /// Start of the unconsumed bytes.
    pub pos: usize,
    /// End of the valid bytes.
    pub filled: usize,
    /// File offset of `buf[0]`.
    pub file_offset: u64,
}

impl Window {
    /// Empty window positioned at `offset`.
    pub fn at(offset: u64) -> Self {
        Window {
            file_offset: offset,
            ..Window::default()
        }
    }

    fn tail_len(&self) -> usize {
        self.filled - self.pos
    }

    /// Slide the unconsumed tail to the front (the classic pre-read
    /// compaction both sources share on their copying paths).
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.copy_within(self.pos..self.filled, 0);
            self.file_offset += self.pos as u64;
            self.filled -= self.pos;
            self.pos = 0;
        }
    }
}

/// A sequential block supplier for [`BlockScanner`] (and the pre-count
/// pass): where the bytes come from — and on which thread the disk wait
/// happens — is this trait's business; line reassembly stays in the
/// scanner. See the module docs for why every implementation yields an
/// identical byte stream.
pub trait BlockSource: Send {
    /// Produce the next sequential chunk into `win`: the unconsumed tail
    /// `buf[pos..filled]` must be preserved (contiguously, ending where the
    /// fresh bytes begin) and `file_offset` kept consistent. Returns the
    /// number of fresh bytes appended; `0` means end of stream.
    fn refill(&mut self, win: &mut Window) -> Result<usize>;

    /// Restart sequential reading at `offset` (the caller resets its
    /// window).
    fn seek(&mut self, offset: u64) -> Result<()>;

    /// Soft read cap: reads stop short of this file offset, then degrade to
    /// [`TAIL_READ`]-sized steps for the (usually short) line straddling
    /// it. `u64::MAX` = uncapped. Set by [`RangeScanner`]: a scanner over a
    /// small slice of a large file must not pull a whole block past its
    /// range — with many fine-grained partition slices that amplifies I/O
    /// by `block_size / slice_len`.
    fn set_read_cap(&mut self, cap: u64);

    /// Hard read limit: never read at or past this file offset (end of
    /// stream there instead). Used by the pre-count pass, which knows its
    /// exact byte range up front.
    fn set_read_limit(&mut self, limit: u64);

    /// Counters accumulated so far.
    fn counters(&self) -> IoCounters;

    /// Return and reset the counters.
    fn take_counters(&mut self) -> IoCounters;

    /// Install a cooperative interrupt flag: once it reads `true`, the next
    /// `refill` fails with a *non-transient* "scan interrupted" error
    /// instead of touching the file, so a cancelled query stops pulling
    /// blocks mid-stream (including the refill-only pre-count pass, which
    /// has no per-row check of its own). Default: ignore the flag.
    fn set_interrupt(&mut self, _flag: Arc<AtomicBool>) {}
}

/// The error a [`BlockSource`] raises when its interrupt flag trips.
/// `ErrorKind::Other` with no OS errno, so [`is_transient_io`] never
/// classifies it as retryable — cancellation must not be retried away.
fn interrupted_error(path: &Path) -> RawCsvError {
    RawCsvError::io(
        format!("read {}", path.display()),
        std::io::Error::other("scan interrupted by query context"),
    )
}

/// Should a failed refill be retried? Only errors that are plausibly
/// transient at the device/syscall layer: `EIO`/`EAGAIN` by errno, or the
/// interrupted/would-block/timed-out kinds. Interrupt-flag errors and
/// parse-layer errors are final.
pub fn is_transient_io(err: &RawCsvError) -> bool {
    match err {
        RawCsvError::Io { source, .. } => {
            matches!(source.raw_os_error(), Some(5) | Some(11))
                || matches!(
                    source.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                )
        }
        _ => false,
    }
}

/// Bytes to request when positioned at file offset `pos`: block-sized until
/// the soft cap, page-sized tail steps beyond it, truncated at the hard
/// limit (0 = stop). Shared by both sources — and that sharing is what
/// makes their read sequences, and therefore their byte streams and I/O
/// counters, line up call for call.
fn read_size_at(pos: u64, block_size: usize, cap: u64, limit: u64) -> usize {
    if pos >= limit {
        return 0;
    }
    let base = if pos >= cap {
        TAIL_READ as u64
    } else {
        (block_size as u64).min(cap - pos).max(TAIL_READ as u64)
    };
    // lint: cast-ok result ≤ block_size.max(TAIL_READ), both usize-valued
    base.min(limit - pos) as usize
}

/// The synchronous source: blocking block-sized `read`s on the scanning
/// thread — byte-for-byte the pre-readahead reader, kept as the
/// `io_readahead_blocks = 0` fallback and the A/B baseline.
pub struct SyncBlocks {
    file: File,
    path: PathBuf,
    block_size: usize,
    read_cap: u64,
    read_limit: u64,
    /// Next file offset to read.
    pos: u64,
    counters: IoCounters,
    interrupt: Option<Arc<AtomicBool>>,
}

impl SyncBlocks {
    /// Open `path` for sequential block reads.
    pub fn open(path: impl AsRef<Path>, block_size: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
        Ok(SyncBlocks {
            file,
            path,
            block_size: block_size.max(TAIL_READ),
            read_cap: u64::MAX,
            read_limit: u64::MAX,
            pos: 0,
            counters: IoCounters::default(),
            interrupt: None,
        })
    }
}

impl BlockSource for SyncBlocks {
    fn refill(&mut self, win: &mut Window) -> Result<usize> {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return Err(interrupted_error(&self.path));
            }
        }
        win.compact();
        let want = read_size_at(self.pos, self.block_size, self.read_cap, self.read_limit);
        if want == 0 {
            return Ok(0);
        }
        if win.buf.len() < win.filled + want {
            win.buf.resize(win.filled + want, 0);
        }
        let t = Instant::now();
        let n = self
            .file
            .read(&mut win.buf[win.filled..win.filled + want])
            .map_err(|e| RawCsvError::io(format!("read {}", self.path.display()), e))?;
        self.counters.stall += t.elapsed();
        self.counters.read_calls += 1;
        self.counters.bytes_read += n as u64;
        self.pos += n as u64;
        win.filled += n;
        Ok(n)
    }

    fn seek(&mut self, offset: u64) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| RawCsvError::io(format!("seek {}", self.path.display()), e))?;
        self.pos = offset;
        Ok(())
    }

    fn set_read_cap(&mut self, cap: u64) {
        self.read_cap = cap;
    }

    fn set_read_limit(&mut self, limit: u64) {
        self.read_limit = limit;
    }

    fn counters(&self) -> IoCounters {
        self.counters
    }

    fn take_counters(&mut self) -> IoCounters {
        std::mem::take(&mut self.counters)
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }
}

/// One prefetched block in flight: `BLOCK_HEADROOM` spare bytes, then the
/// fresh file bytes.
type PrefetchedBlock = std::io::Result<Vec<u8>>;

/// The helper-thread pipeline of a [`ReadaheadBlocks`]: dropped (receiver
/// first, so the helper's next `send` fails and it exits) whenever the
/// consumer seeks, re-caps or finishes. `recycle` returns spent block
/// buffers to the helper so steady state allocates nothing per block —
/// without it the helper would mmap/zero/fault a fresh block-sized buffer
/// every read, costing more than the read itself on cached files.
struct Pipeline {
    rx: Option<Receiver<PrefetchedBlock>>,
    recycle: SyncSender<Vec<u8>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        drop(self.rx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The double-buffered prefetching source: a helper thread reads ahead
/// through its own file handle and keeps up to `depth` blocks in flight on
/// a bounded channel. The scanning thread's `refill` usually finds a block
/// already waiting and takes ownership by pointer swap (splicing the
/// previous window's line tail into the block's headroom), so disk latency
/// hides behind tokenize CPU and the consumer copies no block bodies.
///
/// Best-effort: if the helper thread cannot be spawned, the source
/// degrades to an embedded [`SyncBlocks`] instead of failing the scan.
pub struct ReadaheadBlocks {
    path: PathBuf,
    block_size: usize,
    depth: usize,
    read_cap: u64,
    read_limit: u64,
    /// Next file offset the consumer expects.
    pos: u64,
    pipeline: Option<Pipeline>,
    /// Engaged when spawning the helper failed; delegates everything.
    fallback: Option<SyncBlocks>,
    counters: IoCounters,
    interrupt: Option<Arc<AtomicBool>>,
    /// Test hook: make `spawn_pipeline` fail so the sync-fallback path (and
    /// its `readahead_fallbacks` accounting) can be exercised on a machine
    /// where real spawns never fail.
    fail_spawn_for_tests: bool,
}

impl ReadaheadBlocks {
    /// Open `path` with `depth` blocks of read-ahead (`depth >= 1`).
    pub fn open(path: impl AsRef<Path>, block_size: usize, depth: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        // Surface open errors eagerly (same contract as `SyncBlocks`); the
        // helper re-opens its own handle when it spawns.
        drop(
            File::open(&path)
                .map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?,
        );
        Ok(ReadaheadBlocks {
            path,
            block_size: block_size.max(TAIL_READ),
            depth: depth.max(1),
            read_cap: u64::MAX,
            read_limit: u64::MAX,
            pos: 0,
            pipeline: None,
            fallback: None,
            counters: IoCounters::default(),
            interrupt: None,
            fail_spawn_for_tests: false,
        })
    }

    /// Drop the in-flight pipeline (the helper exits at its next send).
    fn reset_pipeline(&mut self) {
        self.pipeline = None;
    }

    fn spawn_pipeline(&self) -> std::io::Result<Pipeline> {
        if self.fail_spawn_for_tests {
            return Err(std::io::Error::other("forced spawn failure (test hook)"));
        }
        let (tx, rx) = sync_channel(self.depth);
        let (recycle_tx, recycle_rx) = sync_channel(self.depth + 2);
        let path = self.path.clone();
        let (start, cap, limit, block) =
            (self.pos, self.read_cap, self.read_limit, self.block_size);
        let handle = std::thread::Builder::new()
            .name("nodb-readahead".into())
            .spawn(move || prefetch_loop(&path, start, cap, limit, block, &tx, &recycle_rx))?;
        Ok(Pipeline {
            rx: Some(rx),
            recycle: recycle_tx,
            handle: Some(handle),
        })
    }

    /// Degrade to synchronous reads — after a failed spawn, or for the
    /// demand-driven tail past the soft cap — carrying the counters over
    /// so accounting stays continuous.
    fn engage_fallback(&mut self) -> Result<&mut SyncBlocks> {
        let mut sync = SyncBlocks::open(&self.path, self.block_size)?;
        sync.set_read_cap(self.read_cap);
        sync.set_read_limit(self.read_limit);
        if self.pos > 0 {
            sync.seek(self.pos)?;
        }
        sync.counters = std::mem::take(&mut self.counters);
        if let Some(flag) = &self.interrupt {
            sync.set_interrupt(Arc::clone(flag));
        }
        self.fallback = Some(sync);
        Ok(self.fallback.as_mut().expect("just set"))
    }
}

/// Undo any single-core affinity the helper inherited from a pinned
/// consumer (`pin_cores` pins scan workers, and `pthread_create` copies
/// the parent's mask): prefetch I/O sharing the worker's own core would
/// time-share with tokenizing — the opposite of overlap. The all-ones
/// mask is intersected with the process cpuset by the kernel; best-effort.
#[cfg(target_os = "linux")]
fn unpin_current_thread() {
    const SET_BITS: usize = 1024;
    let mask = [u64::MAX; SET_BITS / 64];
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask is a valid, live 128-byte buffer and pid 0 refers to
    // the calling thread; the call only reads the mask.
    let _ = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
}

#[cfg(not(target_os = "linux"))]
fn unpin_current_thread() {}

/// Body of the read-ahead helper thread: replay the exact read sequence
/// [`SyncBlocks`] would issue from `start` and send each block (with
/// [`BLOCK_HEADROOM`] spare front bytes) down the bounded channel.
///
/// The helper stops *at the soft cap* — racing ahead in [`TAIL_READ`]
/// steps would read up to `depth` pages per scanner that the consumer may
/// never want (the straddling tail is usually one page), exactly the
/// amplification the cap exists to prevent. The consumer finishes the tail
/// with demand-driven synchronous reads instead (see
/// [`ReadaheadBlocks::refill`]). At end of file the helper forwards its
/// final zero-byte read as an empty marker block, so the consumer's
/// counters tally the same `read_calls` the synchronous source reports.
/// Exits on EOF, at the cap or hard limit, on error (after forwarding it),
/// or as soon as the consumer hangs up.
fn prefetch_loop(
    path: &Path,
    start: u64,
    cap: u64,
    limit: u64,
    block_size: usize,
    tx: &SyncSender<PrefetchedBlock>,
    recycle: &Receiver<Vec<u8>>,
) {
    unpin_current_thread();
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            let _ = tx.send(Err(e));
            return;
        }
    };
    if start > 0 {
        if let Err(e) = file.seek(SeekFrom::Start(start)) {
            let _ = tx.send(Err(e));
            return;
        }
    }
    let mut pos = start;
    // The consumer cancels this helper by dropping the pipeline: the bounded
    // channel hangs up, the next send fails, and the loop exits — the
    // interrupt flag itself is polled consumer-side in
    // `ReadaheadBlocks::refill`.
    // lint: cancel-ok cancelled via channel hang-up, see above
    loop {
        if pos >= cap {
            return; // consumer takes over with demand-driven tail reads
        }
        let want = read_size_at(pos, block_size, cap, limit);
        if want == 0 {
            return;
        }
        // Reuse a spent buffer from the consumer when one is waiting; only
        // grow (zero-extending) when the target size exceeds anything seen
        // before, so steady state touches no allocator at all.
        let mut buf = recycle.try_recv().unwrap_or_default();
        if buf.len() < BLOCK_HEADROOM + want {
            buf.resize(BLOCK_HEADROOM + want, 0);
        } else {
            buf.truncate(BLOCK_HEADROOM + want);
        }
        match file.read(&mut buf[BLOCK_HEADROOM..]) {
            // EOF marker: an empty block standing for the zero-byte read,
            // so sync and readahead report identical `read_calls`.
            Ok(0) => {
                let _ = tx.send(Ok(Vec::new()));
                return;
            }
            Ok(n) => {
                buf.truncate(BLOCK_HEADROOM + n);
                pos += n as u64;
                if tx.send(Ok(buf)).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

impl BlockSource for ReadaheadBlocks {
    fn refill(&mut self, win: &mut Window) -> Result<usize> {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return Err(interrupted_error(&self.path));
            }
        }
        if let Some(sync) = &mut self.fallback {
            return sync.refill(win);
        }
        if self.pipeline.is_none() {
            match self.spawn_pipeline() {
                Ok(p) => self.pipeline = Some(p),
                Err(_) => {
                    // Count the degradation *before* engaging the fallback:
                    // `engage_fallback` moves the counters into the embedded
                    // sync source, and this used to be a silent downgrade.
                    self.counters.readahead_fallbacks += 1;
                    return self.engage_fallback()?.refill(win);
                }
            }
        }
        let rx = self
            .pipeline
            .as_ref()
            .and_then(|p| p.rx.as_ref())
            .expect("pipeline just ensured");
        let t = Instant::now();
        let received = rx.recv();
        self.counters.stall += t.elapsed();
        let mut block = match received {
            Ok(Ok(b)) if b.is_empty() => {
                // EOF marker: the helper's final zero-byte read, counted
                // exactly like the synchronous source counts its own.
                self.counters.read_calls += 1;
                return Ok(0);
            }
            Ok(Ok(b)) => b,
            Ok(Err(e)) => {
                self.reset_pipeline();
                return Err(RawCsvError::io(format!("read {}", self.path.display()), e));
            }
            Err(_) => {
                // Helper hung up without a marker: it stopped at the soft
                // cap (or the hard limit). Past the cap the consumer reads
                // the straddling tail itself, demand-driven through the
                // synchronous fallback — no speculative page reads a
                // [`RangeScanner`] would just throw away.
                if self.pos >= self.read_limit {
                    return Ok(0);
                }
                if self.pos >= self.read_cap {
                    return self.engage_fallback()?.refill(win);
                }
                return Ok(0);
            }
        };
        let n = block.len() - BLOCK_HEADROOM;
        self.counters.read_calls += 1;
        self.counters.bytes_read += n as u64;
        self.pos += n as u64;

        let tail = win.tail_len();
        let tail_file_offset = win.file_offset + win.pos as u64;
        let spliced_pos = BLOCK_HEADROOM - tail.min(BLOCK_HEADROOM);
        let spent = if tail <= BLOCK_HEADROOM && tail_file_offset >= spliced_pos as u64 {
            // Zero-copy handoff: splice the (small) tail into the block's
            // headroom and make the block the new window buffer.
            block[spliced_pos..BLOCK_HEADROOM].copy_from_slice(&win.buf[win.pos..win.filled]);
            let spent = std::mem::replace(&mut win.buf, block);
            win.pos = spliced_pos;
            win.filled = win.buf.len();
            win.file_offset = tail_file_offset - spliced_pos as u64;
            spent
        } else {
            // Oversized tail (a line longer than the headroom) or the very
            // head of the file: append the block body the copying way.
            win.compact();
            win.buf.truncate(win.filled);
            win.buf.extend_from_slice(&block[BLOCK_HEADROOM..]);
            win.filled += n;
            block
        };
        // Hand the spent buffer back for reuse; dropping it is fine too
        // (full recycle queue, or a pipeline torn down mid-refill).
        if let Some(p) = &self.pipeline {
            let _ = p.recycle.try_send(spent);
        }
        Ok(n)
    }

    fn seek(&mut self, offset: u64) -> Result<()> {
        if let Some(sync) = &mut self.fallback {
            return sync.seek(offset);
        }
        self.reset_pipeline();
        self.pos = offset;
        Ok(())
    }

    fn set_read_cap(&mut self, cap: u64) {
        if let Some(sync) = &mut self.fallback {
            sync.set_read_cap(cap);
            return;
        }
        if cap != self.read_cap {
            self.read_cap = cap;
            self.reset_pipeline();
        }
    }

    fn set_read_limit(&mut self, limit: u64) {
        if let Some(sync) = &mut self.fallback {
            sync.set_read_limit(limit);
            return;
        }
        if limit != self.read_limit {
            self.read_limit = limit;
            self.reset_pipeline();
        }
    }

    fn counters(&self) -> IoCounters {
        match &self.fallback {
            Some(sync) => sync.counters(),
            None => self.counters,
        }
    }

    fn take_counters(&mut self) -> IoCounters {
        match &mut self.fallback {
            Some(sync) => sync.take_counters(),
            None => std::mem::take(&mut self.counters),
        }
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        if let Some(sync) = &mut self.fallback {
            sync.set_interrupt(Arc::clone(&flag));
        }
        self.interrupt = Some(flag);
    }
}

/// Build a [`BlockSource`] for `path`: [`SyncBlocks`] when
/// `readahead_blocks == 0`, a [`ReadaheadBlocks`] keeping that many blocks
/// in flight otherwise.
///
/// Files no larger than one block degrade to [`SyncBlocks`] regardless of
/// the requested depth: the whole file is a single refill, so a helper
/// thread could overlap nothing and the spawn/join would be pure overhead
/// (the stat is one syscall; growth between stat and scan only costs the
/// missed overlap, never correctness).
pub fn make_source(
    path: impl AsRef<Path>,
    block_size: usize,
    readahead_blocks: usize,
) -> Result<Box<dyn BlockSource>> {
    let readahead_blocks = if readahead_blocks > 0 {
        match std::fs::metadata(&path) {
            Ok(m) if m.len() <= block_size.max(TAIL_READ) as u64 => 0,
            _ => readahead_blocks,
        }
    } else {
        0
    };
    Ok(if readahead_blocks == 0 {
        Box::new(SyncBlocks::open(path, block_size)?)
    } else {
        Box::new(ReadaheadBlocks::open(path, block_size, readahead_blocks)?)
    })
}

/// Deterministic fault schedule for [`FaultyBlocks`]: a seeded PRNG decides
/// per refill whether to inject, and which of the three fault kinds
/// (transient `EIO`, injected latency, short read). Same seed + same refill
/// sequence = same faults, which is what makes chaos runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed (splitmix64 stream).
    pub seed: u64,
    /// Inject on roughly one refill in `one_in` (clamped to at least 1).
    pub one_in: u32,
    /// Sleep this long when the latency fault fires.
    pub latency_us: u64,
}

/// Resilience knobs for a scan's I/O stack, applied by [`make_source_with`]:
/// optional deterministic fault injection (innermost) and bounded retry
/// with backoff (outermost). The default profile is a no-op — no wrapper is
/// stacked at all — so existing callers keep byte- and counter-identical
/// behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoProfile {
    /// Re-issue a failed refill up to this many times when the error is
    /// transient ([`is_transient_io`]). `0` disables retry entirely.
    pub retry_attempts: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub retry_backoff_ms: u64,
    /// Inject deterministic faults (tests/CI chaos runs only).
    pub faults: Option<FaultPlan>,
}

/// A [`BlockSource`] decorator that injects deterministic, *recoverable*
/// faults: transient `EIO` (the refill fails without touching the inner
/// source, so a retry succeeds), injected latency (a sleep before a normal
/// read), and short reads (the inner hard limit is temporarily clamped one
/// page ahead, then restored — the concatenated byte stream is unchanged,
/// only the block boundaries move). Never injects twice in a row, so a
/// single retry always clears an injected error.
pub struct FaultyBlocks {
    inner: Box<dyn BlockSource>,
    plan: FaultPlan,
    rng: u64,
    /// Mirror of the inner source's position (refill advances, seek resets)
    /// so short-read clamps can be computed without querying the inner.
    pos: u64,
    /// The real hard limit, restored after each short-read clamp.
    read_limit: u64,
    last_was_fault: bool,
}

impl FaultyBlocks {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: Box<dyn BlockSource>, plan: FaultPlan) -> Self {
        FaultyBlocks {
            inner,
            plan,
            rng: plan.seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            pos: 0,
            read_limit: u64::MAX,
            last_was_fault: false,
        }
    }

    /// splitmix64 step.
    fn next_draw(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl BlockSource for FaultyBlocks {
    fn refill(&mut self, win: &mut Window) -> Result<usize> {
        let draw = self.next_draw();
        let one_in = self.plan.one_in.max(1) as u64;
        let inject = !self.last_was_fault && draw.is_multiple_of(one_in);
        self.last_was_fault = false;
        if inject {
            match (draw / one_in) % 3 {
                0 => {
                    self.last_was_fault = true;
                    return Err(RawCsvError::io(
                        "injected transient fault".to_string(),
                        std::io::Error::from_raw_os_error(5), // EIO
                    ));
                }
                1 => {
                    // Latency only: the read below proceeds normally.
                    std::thread::sleep(Duration::from_micros(self.plan.latency_us));
                }
                _ => {
                    // Short read: clamp the inner hard limit one page ahead
                    // so this refill returns at most TAIL_READ fresh bytes,
                    // then restore the real limit. Position-only state means
                    // the byte stream is unaffected.
                    self.last_was_fault = true;
                    let short = (self.pos + TAIL_READ as u64).min(self.read_limit);
                    self.inner.set_read_limit(short);
                    let r = self.inner.refill(win);
                    self.inner.set_read_limit(self.read_limit);
                    let n = r?;
                    self.pos += n as u64;
                    return Ok(n);
                }
            }
        }
        let n = self.inner.refill(win)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn seek(&mut self, offset: u64) -> Result<()> {
        self.inner.seek(offset)?;
        self.pos = offset;
        Ok(())
    }

    fn set_read_cap(&mut self, cap: u64) {
        self.inner.set_read_cap(cap);
    }

    fn set_read_limit(&mut self, limit: u64) {
        self.read_limit = limit;
        self.inner.set_read_limit(limit);
    }

    fn counters(&self) -> IoCounters {
        self.inner.counters()
    }

    fn take_counters(&mut self) -> IoCounters {
        self.inner.take_counters()
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.inner.set_interrupt(flag);
    }
}

/// A [`BlockSource`] decorator that re-issues a failed refill up to
/// `attempts` times when the error is transient ([`is_transient_io`]),
/// sleeping an exponentially growing backoff between tries. Safe because a
/// failed refill never advances any source's position: [`SyncBlocks`]
/// forwards the error before bumping `pos`, and [`ReadaheadBlocks`] tears
/// down its pipeline and respawns from the consumer position on the next
/// call. Retries are tallied into [`IoCounters::retries`].
pub struct RetryBlocks {
    inner: Box<dyn BlockSource>,
    attempts: u32,
    backoff_ms: u64,
    retries: u64,
}

impl RetryBlocks {
    /// Wrap `inner` with bounded retry.
    pub fn new(inner: Box<dyn BlockSource>, attempts: u32, backoff_ms: u64) -> Self {
        RetryBlocks {
            inner,
            attempts,
            backoff_ms,
            retries: 0,
        }
    }
}

impl BlockSource for RetryBlocks {
    fn refill(&mut self, win: &mut Window) -> Result<usize> {
        let mut attempt = 0u32;
        loop {
            match self.inner.refill(win) {
                Err(e) if attempt < self.attempts && is_transient_io(&e) => {
                    attempt += 1;
                    self.retries += 1;
                    let backoff = self.backoff_ms.saturating_mul(1u64 << (attempt - 1).min(6));
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                }
                other => return other,
            }
        }
    }

    fn seek(&mut self, offset: u64) -> Result<()> {
        self.inner.seek(offset)
    }

    fn set_read_cap(&mut self, cap: u64) {
        self.inner.set_read_cap(cap);
    }

    fn set_read_limit(&mut self, limit: u64) {
        self.inner.set_read_limit(limit);
    }

    fn counters(&self) -> IoCounters {
        let mut c = self.inner.counters();
        c.retries += self.retries;
        c
    }

    fn take_counters(&mut self) -> IoCounters {
        let mut c = self.inner.take_counters();
        c.retries += std::mem::take(&mut self.retries);
        c
    }

    fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.inner.set_interrupt(flag);
    }
}

/// [`make_source`] with an [`IoProfile`]: the base source (sync or
/// read-ahead, tiny files degraded as usual) is wrapped innermost-out with
/// [`FaultyBlocks`] (when a fault plan is set) and [`RetryBlocks`] (when
/// retries are enabled) — so retry sits *above* injection and both source
/// kinds get the same recovery behavior on every scan path. A default
/// profile stacks nothing.
pub fn make_source_with(
    path: impl AsRef<Path>,
    block_size: usize,
    readahead_blocks: usize,
    profile: IoProfile,
) -> Result<Box<dyn BlockSource>> {
    let mut source = make_source(path, block_size, readahead_blocks)?;
    if let Some(plan) = profile.faults {
        source = Box::new(FaultyBlocks::new(source, plan));
    }
    if profile.retry_attempts > 0 {
        source = Box::new(RetryBlocks::new(
            source,
            profile.retry_attempts,
            profile.retry_backoff_ms,
        ));
    }
    Ok(source)
}

impl BlockScanner {
    /// Open `path` for a sequential scan with the given block size, reading
    /// synchronously ([`SyncBlocks`]).
    pub fn open(path: impl AsRef<Path>, block_size: usize) -> Result<Self> {
        Self::open_with_readahead(path, block_size, 0)
    }

    /// Open `path` with the given read-ahead depth (`0` = synchronous).
    pub fn open_with_readahead(
        path: impl AsRef<Path>,
        block_size: usize,
        readahead_blocks: usize,
    ) -> Result<Self> {
        Ok(Self::from_source(make_source(
            path,
            block_size,
            readahead_blocks,
        )?))
    }

    /// [`Self::open_with_readahead`] with an [`IoProfile`] (retry /
    /// fault-injection stack — see [`make_source_with`]).
    pub fn open_with_profile(
        path: impl AsRef<Path>,
        block_size: usize,
        readahead_blocks: usize,
        profile: IoProfile,
    ) -> Result<Self> {
        Ok(Self::from_source(make_source_with(
            path,
            block_size,
            readahead_blocks,
            profile,
        )?))
    }

    /// Scan over an arbitrary [`BlockSource`].
    pub fn from_source(source: Box<dyn BlockSource>) -> Self {
        BlockScanner {
            source,
            win: Window::default(),
            eof: false,
            next_line_no: 0,
        }
    }

    /// Open with [`DEFAULT_BLOCK_SIZE`].
    pub fn open_default(path: impl AsRef<Path>) -> Result<Self> {
        Self::open(path, DEFAULT_BLOCK_SIZE)
    }

    /// Restart the scan from offset `offset` (used to resume over appended
    /// data without re-reading the prefix). Resets line numbering to
    /// `line_no`.
    pub fn seek_to(&mut self, offset: u64, line_no: u64) -> Result<()> {
        self.source.seek(offset)?;
        self.win.buf.clear();
        self.win.pos = 0;
        self.win.filled = 0;
        self.win.file_offset = offset;
        self.eof = false;
        self.next_line_no = line_no;
        Ok(())
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> IoCounters {
        self.source.counters()
    }

    /// Return and reset the counters.
    pub fn take_counters(&mut self) -> IoCounters {
        self.source.take_counters()
    }

    /// Produce the next line, or `None` at end of file.
    ///
    /// The returned slice borrows the internal buffer and is valid until the
    /// next call.
    pub fn next_line(&mut self) -> Result<Option<LineRef<'_>>> {
        loop {
            // Look for a newline in the unconsumed window.
            if let Some(nl) = find_byte(&self.win.buf[self.win.pos..self.win.filled], b'\n') {
                let start = self.win.pos;
                let end = start + nl;
                self.win.pos = end + 1;
                let offset = self.win.file_offset + start as u64;
                let line_no = self.next_line_no;
                self.next_line_no += 1;
                let bytes = trim_cr(&self.win.buf[start..end]);
                return Ok(Some(LineRef {
                    line_no,
                    offset,
                    bytes,
                }));
            }
            if self.eof {
                // Final unterminated line, if any.
                if self.win.pos < self.win.filled {
                    let start = self.win.pos;
                    self.win.pos = self.win.filled;
                    let offset = self.win.file_offset + start as u64;
                    let line_no = self.next_line_no;
                    self.next_line_no += 1;
                    let bytes = trim_cr(&self.win.buf[start..self.win.filled]);
                    return Ok(Some(LineRef {
                        line_no,
                        offset,
                        bytes,
                    }));
                }
                return Ok(None);
            }
            self.refill()?;
        }
    }

    /// Produce the next line *and* tokenize its leading fields in the same
    /// byte pass (plain, unquoted configurations only).
    ///
    /// The classic loop pays two passes over every tuple prefix: one SWAR
    /// scan locating `\n` (line splitting) and a second locating delimiters
    /// (tokenizing). This fused variant uses [`find_byte2`] to match
    /// *delimiter or newline* per 8-byte word, so each prefix byte is
    /// visited once; once `upto_field` fields are delimited (selective
    /// tokenizing), the remainder of the tuple degrades to a single-needle
    /// newline scan. `out` afterwards holds exactly what
    /// [`crate::tokenizer::TokenizerConfig::tokenize_selective`] would have
    /// produced for the returned line.
    pub fn next_line_tokenized(
        &mut self,
        delimiter: u8,
        upto_field: usize,
        out: &mut Tokens,
    ) -> Result<Option<LineRef<'_>>> {
        out.begin_line();
        // All cursors are relative to the line start (`self.win.pos`), which
        // does not advance until the line is complete: `refill` preserves
        // the unconsumed tail contiguously (compaction or headroom splice),
        // so absolute positions shift while relative ones stay valid.
        let mut rel = 0usize; // scan cursor
        let mut field_start = 0usize; // current field start
        let mut fields_done = false; // located every requested field
        loop {
            let window = &self.win.buf[self.win.pos + rel..self.win.filled];
            let hit = if fields_done {
                find_byte(window, b'\n').map(|p| (p, b'\n'))
            } else {
                find_byte2(window, delimiter, b'\n')
            };
            match hit {
                Some((off, b)) if b == delimiter => {
                    let at = rel + off;
                    // lint: cast-ok line-relative span; lines ≤ io_block_size (≤ 256 MiB)
                    out.push_span(field_start as u32, at as u32);
                    if out.len() > upto_field {
                        fields_done = true;
                    }
                    field_start = at + 1;
                    rel = at + 1;
                }
                Some((off, _newline)) => {
                    let at = rel + off;
                    return Ok(Some(self.emit_line(
                        at,
                        true,
                        field_start,
                        fields_done,
                        out,
                    )));
                }
                None => {
                    if self.eof {
                        if self.win.pos < self.win.filled {
                            let at = self.win.filled - self.win.pos;
                            return Ok(Some(self.emit_line(
                                at,
                                false,
                                field_start,
                                fields_done,
                                out,
                            )));
                        }
                        return Ok(None);
                    }
                    rel = self.win.filled - self.win.pos; // resume where the scan stopped
                    self.refill()?;
                }
            }
        }
    }

    /// Finish the fused scan of one line: push the final span, consume the
    /// buffer, and build the [`LineRef`]. `line_len` is relative to the line
    /// start; `terminated` tells whether a `\n` follows.
    fn emit_line(
        &mut self,
        line_len: usize,
        terminated: bool,
        field_start: usize,
        fields_done: bool,
        out: &mut Tokens,
    ) -> LineRef<'_> {
        let start = self.win.pos;
        let trimmed = trim_cr(&self.win.buf[start..start + line_len]).len();
        if !fields_done {
            // Final field runs to the (CR-trimmed) end of the line.
            // lint: cast-ok line-relative span; lines ≤ io_block_size (≤ 256 MiB)
            out.push_span(field_start.min(trimmed) as u32, trimmed as u32);
            out.mark_complete();
        }
        self.win.pos = start + line_len + usize::from(terminated);
        let offset = self.win.file_offset + start as u64;
        let line_no = self.next_line_no;
        self.next_line_no += 1;
        LineRef {
            line_no,
            offset,
            bytes: &self.win.buf[start..start + trimmed],
        }
    }

    /// Restrict reads to stop at file offset `cap` and continue in
    /// [`TAIL_READ`]-sized steps beyond it (for the line straddling the
    /// cap). Lines are still produced normally past the cap — this caps
    /// *read-ahead*, not the scan.
    pub fn set_read_cap(&mut self, cap: u64) {
        self.source.set_read_cap(cap);
    }

    /// The file offset of the next unconsumed byte. After a line is
    /// produced this points just past its terminator (or, for a final
    /// unterminated line, just past its last byte) — so at end of stream
    /// it equals the number of file bytes the scan actually saw.
    pub fn position(&self) -> u64 {
        self.win.file_offset + self.win.pos as u64
    }

    /// Whether the underlying source reported end of stream. Combined with
    /// [`Self::position`] a caller that knows the expected file length can
    /// tell a clean end from a file that shrank mid-scan.
    pub fn at_eof(&self) -> bool {
        self.eof
    }

    /// Install a cooperative interrupt flag on the underlying source (see
    /// [`BlockSource::set_interrupt`]).
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.source.set_interrupt(flag);
    }

    /// Pull the next sequential chunk from the source into the window.
    fn refill(&mut self) -> Result<()> {
        if self.source.refill(&mut self.win)? == 0 {
            self.eof = true;
        }
        Ok(())
    }
}

/// One partition of a raw file for the parallel scan: the byte range
/// `[start, end)`, where `start` is the first byte of a line (or 0) and
/// `end` is either the first byte of a later line or the file length.
///
/// Ownership discipline: a scanner over the range owns every line whose
/// *first byte* lies inside it. A line that starts before `end` but runs
/// past it still belongs to this range (its reader scans past `end` to the
/// terminating newline); a line starting exactly at `end` belongs to the
/// next range. Ranges produced by [`partition_line_ranges`] therefore cover
/// every line exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    /// First byte of the range (a line start, or 0).
    pub start: u64,
    /// One past the last byte of the range (a line start, or the file end).
    pub end: u64,
}

/// Split `path` into up to `parts` line-aligned [`LineRange`]s of roughly
/// equal byte size.
///
/// Each candidate split point (`len * k / parts`) is snapped forward to the
/// next line start by probing for the following `\n`. Snapping can collapse
/// neighbouring candidates (very long lines), so the result may hold fewer
/// ranges than requested — but always at least one for a non-empty file, and
/// the ranges concatenate to exactly `[0, len)`.
///
/// Files smaller than `parts` bytes are special-cased: equal-byte targets
/// there collapse so badly that the snap loop used to return fewer
/// partitions than the line count supports, leaving workers idle. For those
/// the whole file is read (it is tiny by definition) and split line-exactly
/// into `min(parts, lines)` ranges.
pub fn partition_line_ranges(path: impl AsRef<Path>, parts: usize) -> Result<Vec<LineRange>> {
    partition_line_ranges_capped(path, parts, u64::MAX)
}

/// [`partition_line_ranges`] bounded by an externally known length: the
/// ranges cover `[0, min(file_len, max_len))`. Callers that fingerprinted
/// the file earlier (a source epoch) pass the fingerprinted length so that
/// (a) a file that *grew* since the fingerprint is partitioned only up to
/// the known-good prefix (a concurrent appender's torn tail is never
/// handed to a scanner), and (b) a file that *shrank* between `stat` and
/// open yields ranges that never seek past EOF.
pub fn partition_line_ranges_capped(
    path: impl AsRef<Path>,
    parts: usize,
    max_len: u64,
) -> Result<Vec<LineRange>> {
    let path = path.as_ref();
    let mut file =
        File::open(path).map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
    let len = file
        .metadata()
        .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?
        .len()
        .min(max_len);
    if len == 0 {
        return Ok(Vec::new());
    }
    if len < parts as u64 {
        return partition_tiny_file(&mut file, path, len, parts);
    }
    let mut cuts: Vec<u64> = vec![0];
    for k in 1..parts {
        let target = (len as u128 * k as u128 / parts as u128) as u64;
        let cut = next_line_start_at_or_after(&mut file, path, target, len)?;
        if cut < len && cut > *cuts.last().expect("non-empty") {
            cuts.push(cut);
        }
    }
    cuts.push(len);
    Ok(cuts
        .windows(2)
        .map(|w| LineRange {
            start: w[0],
            end: w[1],
        })
        .collect())
}

/// Exact split of a file smaller than `parts` bytes: read it whole, list
/// every line start, and deal lines out to exactly `min(parts, lines)`
/// ranges, near-equal in line count.
fn partition_tiny_file(
    file: &mut File,
    path: &Path,
    len: u64,
    parts: usize,
) -> Result<Vec<LineRange>> {
    // Capacity is a hint: a tiny file is < `parts` bytes by definition, and
    // an (impossible) overflowing length only costs a realloc.
    let mut bytes = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
    file.read_to_end(&mut bytes)
        .map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))?;
    // The caller may have capped `len` below the file's current length
    // (a source epoch older than a concurrent append); ignore the excess.
    // lint: cast-ok tiny file: len < parts, a small caller constant
    bytes.truncate(len as usize);
    let mut starts: Vec<u64> = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            starts.push(i as u64 + 1);
        }
    }
    let lines = starts.len();
    let nparts = parts.min(lines).max(1);
    let mut ranges = Vec::with_capacity(nparts);
    for k in 0..nparts {
        let lo = lines * k / nparts;
        let hi = lines * (k + 1) / nparts;
        let start = starts[lo];
        let end = if hi < lines { starts[hi] } else { len };
        ranges.push(LineRange { start, end });
    }
    Ok(ranges)
}

/// Count the lines a [`LineRange`] *owns* (lines whose first byte lies in
/// `[start, end)`), in one SWAR pass over block reads — the counting-only
/// scanner of the two-phase cold scan's pre-count phase.
///
/// A non-empty range starts at a line start, so it owns one line plus one
/// per `\n` in `[start, end - 1)` (the newline at `end - 1`, if any,
/// terminates the range's last line rather than starting a new owned one —
/// see the [`LineRange`] ownership discipline). No line reassembly, no
/// copies: the block buffer is only ever scanned by [`count_byte`].
/// Returns the owned-line count together with the I/O performed.
pub fn count_lines_in_range(
    path: impl AsRef<Path>,
    block_size: usize,
    range: LineRange,
) -> Result<(u64, IoCounters)> {
    count_lines_in_range_with(path, block_size, 0, range)
}

/// [`count_lines_in_range`] over a configurable [`BlockSource`]: the cold
/// pre-count pass reuses the scan's read-ahead pipeline
/// (`readahead_blocks > 0`), overlapping its SWAR counting with the next
/// block's read. The hard read limit keeps every source from reading a
/// single byte past `range.end - 1`, so the I/O accounting matches the
/// synchronous pass. Ranges no larger than one block count synchronously —
/// a single-refill slice has nothing to overlap (see
/// [`RangeScanner::open_with_readahead`]).
pub fn count_lines_in_range_with(
    path: impl AsRef<Path>,
    block_size: usize,
    readahead_blocks: usize,
    range: LineRange,
) -> Result<(u64, IoCounters)> {
    count_lines_in_range_ctl(
        path,
        block_size,
        readahead_blocks,
        range,
        IoProfile::default(),
        None,
    )
}

/// [`count_lines_in_range_with`] under an [`IoProfile`] and an optional
/// cooperative interrupt flag: the pre-count pass is refill-only (no
/// per-row loop), so without a source-level interrupt a cancelled query
/// would keep counting newlines until its range ran out.
pub fn count_lines_in_range_ctl(
    path: impl AsRef<Path>,
    block_size: usize,
    readahead_blocks: usize,
    range: LineRange,
    profile: IoProfile,
    interrupt: Option<Arc<AtomicBool>>,
) -> Result<(u64, IoCounters)> {
    if range.end <= range.start {
        return Ok((0, IoCounters::default()));
    }
    let readahead_blocks = if range.end - range.start <= block_size.max(TAIL_READ) as u64 {
        0
    } else {
        readahead_blocks
    };
    let mut source = make_source_with(path, block_size, readahead_blocks, profile)?;
    if let Some(flag) = interrupt {
        source.set_interrupt(flag);
    }
    if range.start > 0 {
        source.seek(range.start)?;
    }
    source.set_read_limit(range.end - 1); // counting window is [start, end-1)
    let mut win = Window::at(range.start);
    let mut lines = 1u64; // the line starting at `range.start`
    loop {
        // A short read (file shrank under us) ends the loop too; the scan
        // proper will notice.
        if source.refill(&mut win)? == 0 {
            break;
        }
        lines += count_byte(&win.buf[win.pos..win.filled], b'\n') as u64;
        win.pos = win.filled; // fully consumed: nothing to carry over
    }
    Ok((lines, source.take_counters()))
}

/// Byte offset of the first line that starts at or after `from`: scan
/// forward for the next `\n` and return the byte after it (`len` when the
/// tail has no further newline).
fn next_line_start_at_or_after(file: &mut File, path: &Path, from: u64, len: u64) -> Result<u64> {
    if from == 0 {
        return Ok(0);
    }
    // A line starting exactly at `from` is recognized by the newline just
    // before it, so the probe starts one byte early.
    let mut pos = from - 1;
    file.seek(SeekFrom::Start(pos))
        .map_err(|e| RawCsvError::io(format!("seek {}", path.display()), e))?;
    let mut buf = [0u8; 4096];
    loop {
        let n = file
            .read(&mut buf)
            .map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))?;
        if n == 0 {
            return Ok(len);
        }
        if let Some(i) = find_byte(&buf[..n], b'\n') {
            return Ok(pos + i as u64 + 1);
        }
        pos += n as u64;
    }
}

/// A [`BlockScanner`] restricted to one [`LineRange`] — the per-worker
/// reader of the parallel scan. Yields exactly the lines the range owns,
/// with the same offsets a whole-file scan would report.
pub struct RangeScanner {
    inner: BlockScanner,
    end: u64,
    done: bool,
}

impl RangeScanner {
    /// Open `path` positioned at `range.start`.
    ///
    /// `first_line_no` seeds line numbering (purely informational; the
    /// caller usually knows how many lines precede the range, or passes 0).
    pub fn open(
        path: impl AsRef<Path>,
        block_size: usize,
        range: LineRange,
        first_line_no: u64,
    ) -> Result<Self> {
        Self::open_with_readahead(path, block_size, 0, range, first_line_no)
    }

    /// [`Self::open`] with a read-ahead depth (`0` = synchronous): the
    /// per-worker reader of the parallel scan gets its own prefetch
    /// pipeline, capped at the range end like the synchronous reads are.
    ///
    /// A range no larger than one block degrades to the synchronous source
    /// regardless of the requested depth: the whole slice is a single
    /// refill, so a helper thread could overlap nothing and the spawn/join
    /// would be pure per-slice overhead (fine-grained stealing slices make
    /// that a real cost).
    pub fn open_with_readahead(
        path: impl AsRef<Path>,
        block_size: usize,
        readahead_blocks: usize,
        range: LineRange,
        first_line_no: u64,
    ) -> Result<Self> {
        Self::open_with_profile(
            path,
            block_size,
            readahead_blocks,
            range,
            first_line_no,
            IoProfile::default(),
        )
    }

    /// [`Self::open_with_readahead`] with an [`IoProfile`] (retry /
    /// fault-injection stack — see [`make_source_with`]).
    pub fn open_with_profile(
        path: impl AsRef<Path>,
        block_size: usize,
        readahead_blocks: usize,
        range: LineRange,
        first_line_no: u64,
        profile: IoProfile,
    ) -> Result<Self> {
        let readahead_blocks =
            if range.end.saturating_sub(range.start) <= block_size.max(TAIL_READ) as u64 {
                0
            } else {
                readahead_blocks
            };
        let mut inner =
            BlockScanner::open_with_profile(path, block_size, readahead_blocks, profile)?;
        if range.start > 0 {
            inner.seek_to(range.start, first_line_no)?;
        }
        // Stop read-ahead at the range end (plus page-sized steps for the
        // final straddling line): with many fine-grained slices, full-block
        // read-ahead would multiply I/O by `block_size / slice_len`.
        inner.set_read_cap(range.end);
        Ok(RangeScanner {
            inner,
            end: range.end,
            done: false,
        })
    }

    /// Next owned line, or `None` once the range is exhausted.
    pub fn next_line(&mut self) -> Result<Option<LineRef<'_>>> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_line()? {
            Some(l) if l.offset < self.end => Ok(Some(l)),
            _ => {
                self.done = true;
                Ok(None)
            }
        }
    }

    /// Fused variant of [`Self::next_line`]: tokenize the line's leading
    /// fields in the same byte pass (see
    /// [`BlockScanner::next_line_tokenized`]).
    pub fn next_line_tokenized(
        &mut self,
        delimiter: u8,
        upto_field: usize,
        out: &mut Tokens,
    ) -> Result<Option<LineRef<'_>>> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_line_tokenized(delimiter, upto_field, out)? {
            Some(l) if l.offset < self.end => Ok(Some(l)),
            _ => {
                self.done = true;
                Ok(None)
            }
        }
    }

    /// Return and reset the I/O counters.
    pub fn take_counters(&mut self) -> IoCounters {
        self.inner.take_counters()
    }

    /// Install a cooperative interrupt flag on the underlying source (see
    /// [`BlockSource::set_interrupt`]).
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.inner.set_interrupt(flag);
    }

    /// The file offset of the next unconsumed byte (see
    /// [`BlockScanner::position`]).
    pub fn position(&self) -> u64 {
        self.inner.position()
    }

    /// Whether the scan ran out of file *before* reaching the range end:
    /// the source reported end of stream while the read position is still
    /// short of `range.end`. A clean exhaustion (a line starting at or
    /// after `end`, or the file ending exactly at `end`) never trips this —
    /// only a file that shrank after the range was planned does. Callers
    /// should consult this both after every produced line (a truncation
    /// mid-line surfaces as a bogus final unterminated line *before* the
    /// scanner returns `None`) and when `next_line` returns `None`.
    pub fn ended_short(&self) -> bool {
        self.inner.at_eof() && self.inner.position() < self.end
    }
}

/// Cheap fingerprint of a raw file used for update detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFileMeta {
    /// File length in bytes.
    pub len: u64,
    /// Last-modified time as reported by the filesystem.
    pub modified: Option<SystemTime>,
    /// Number of head bytes covered by `head_hash` (`min(len, 4096)`).
    pub head_len: u64,
    /// FNV-1a hash of the first `head_len` bytes. Appending rows keeps this
    /// prefix stable; replacing the file almost surely changes it.
    pub head_hash: u64,
}

/// How a file changed relative to a previously recorded [`RawFileMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileChange {
    /// Identical length and head: treat as unchanged.
    Unchanged,
    /// Longer, same head: rows were appended after `old_len`.
    Appended {
        /// Length at the time of the previous probe.
        old_len: u64,
    },
    /// Shorter or different head: the file was replaced or rewritten.
    Replaced,
}

impl RawFileMeta {
    /// Probe `path` and build a fingerprint with the default 4 KiB head.
    pub fn probe(path: impl AsRef<Path>) -> Result<Self> {
        Self::probe_with_head(path, 4096)
    }

    /// Probe `path` hashing the first `min(len, head_limit)` bytes.
    pub fn probe_with_head(path: impl AsRef<Path>, head_limit: u64) -> Result<Self> {
        let path = path.as_ref();
        let mut file =
            File::open(path).map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
        let meta = file
            .metadata()
            .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?;
        let len = meta.len();
        let head_len = len.min(head_limit);
        // lint: cast-ok head_len ≤ head_limit, a small caller constant
        let mut head = vec![0u8; head_len as usize];
        file.read_exact(&mut head)
            .map_err(|e| RawCsvError::io(format!("read head of {}", path.display()), e))?;
        Ok(RawFileMeta {
            len,
            modified: meta.modified().ok(),
            head_len,
            head_hash: fnv1a(&head),
        })
    }

    /// Re-probe `path` and classify how it changed since `self` was taken.
    ///
    /// The re-probe hashes exactly `self.head_len` bytes so that appends to
    /// files shorter than the head window are still recognized as appends.
    pub fn classify_change(&self, path: impl AsRef<Path>) -> Result<FileChange> {
        let new = Self::probe_with_head(&path, self.head_len)?;
        Ok(if new.len < self.len || new.head_hash != self.head_hash {
            FileChange::Replaced
        } else if new.len > self.len {
            FileChange::Appended { old_len: self.len }
        } else if new.modified != self.modified {
            // Same length/head but touched: content beyond the head may have
            // been rewritten in place; be conservative.
            FileChange::Replaced
        } else {
            FileChange::Unchanged
        })
    }
}

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Read an entire file into memory (used by the conventional loaders, where
/// the full parse dominates anyway).
pub fn read_full(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let path = path.as_ref();
    std::fs::read(path).map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(name: &str, content: &[u8]) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawcsv_test_{name}_{}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(content).unwrap();
        p
    }

    fn collect_lines(path: &Path, block: usize) -> Vec<(u64, u64, Vec<u8>)> {
        let mut sc = BlockScanner::open(path, block).unwrap();
        let mut out = Vec::new();
        while let Some(l) = sc.next_line().unwrap() {
            out.push((l.line_no, l.offset, l.bytes.to_vec()));
        }
        out
    }

    /// Drain a source to EOF, returning the concatenated byte stream.
    fn drain_source(src: &mut dyn BlockSource) -> Vec<u8> {
        let mut win = Window::default();
        let mut bytes = Vec::new();
        loop {
            let n = src.refill(&mut win).unwrap();
            if n == 0 {
                break;
            }
            bytes.extend_from_slice(&win.buf[win.pos..win.filled]);
            win.pos = win.filled;
        }
        bytes
    }

    #[test]
    fn readahead_spawn_failure_engages_counted_fallback() {
        // Big enough that make_source would not degrade it to sync anyway.
        let mut content = Vec::new();
        for i in 0..2000 {
            content.extend_from_slice(format!("row{i},{}\n", i * 7).as_bytes());
        }
        let p = tmp_file("spawnfail", &content);
        let mut src = ReadaheadBlocks::open(&p, 4096, 2).unwrap();
        src.fail_spawn_for_tests = true;
        let bytes = drain_source(&mut src);
        assert_eq!(bytes, content, "fallback must deliver the same stream");
        let c = src.take_counters();
        assert_eq!(c.readahead_fallbacks, 1, "the downgrade must be recorded");
        assert_eq!(c.bytes_read, content.len() as u64);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn faulty_stream_with_retry_is_byte_identical_and_deterministic() {
        let mut content = Vec::new();
        for i in 0..6000 {
            content.extend_from_slice(format!("{i},name_{i},{}\n", i % 13).as_bytes());
        }
        let p = tmp_file("faulty", &content);
        let profile = IoProfile {
            retry_attempts: 2,
            retry_backoff_ms: 0,
            faults: Some(FaultPlan {
                seed: 0x5eed,
                one_in: 3,
                latency_us: 10,
            }),
        };
        for readahead in [0usize, 2] {
            let mut counters = Vec::new();
            for _ in 0..2 {
                let mut src = make_source_with(&p, 4096, readahead, profile).unwrap();
                let bytes = drain_source(src.as_mut());
                assert_eq!(bytes, content, "faults must never corrupt the stream");
                counters.push(src.take_counters());
            }
            // `stall` is wall-clock and excluded; everything the fault
            // schedule controls must replay exactly.
            let key = |c: &IoCounters| (c.bytes_read, c.read_calls, c.retries);
            assert_eq!(
                key(&counters[0]),
                key(&counters[1]),
                "seeded fault schedule must be reproducible"
            );
            assert!(
                counters[0].retries > 0,
                "one_in=3 over dozens of refills must inject at least one EIO"
            );
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn injected_eio_without_retry_surfaces_as_transient() {
        let content = vec![b'a'; 64 * 1024];
        let p = tmp_file("eio_surface", &content);
        let profile = IoProfile {
            retry_attempts: 0,
            retry_backoff_ms: 0,
            faults: Some(FaultPlan {
                seed: 1,
                one_in: 1, // every eligible refill faults
                latency_us: 0,
            }),
        };
        let mut src = make_source_with(&p, 4096, 0, profile).unwrap();
        let mut win = Window::default();
        let mut saw_err = false;
        for _ in 0..8 {
            match src.refill(&mut win) {
                Ok(_) => win.pos = win.filled,
                Err(e) => {
                    assert!(is_transient_io(&e), "injected EIO must classify transient");
                    saw_err = true;
                    break;
                }
            }
        }
        assert!(
            saw_err,
            "one_in=1 must inject an error within a few refills"
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn interrupt_flag_stops_refills_with_final_error() {
        let content = vec![b'x'; 32 * 1024];
        let p = tmp_file("interrupt", &content);
        for readahead in [0usize, 2] {
            let flag = Arc::new(AtomicBool::new(false));
            let mut src = make_source(&p, 4096, readahead).unwrap();
            src.set_interrupt(Arc::clone(&flag));
            let mut win = Window::default();
            assert!(
                src.refill(&mut win).unwrap() > 0,
                "runs until the flag trips"
            );
            win.pos = win.filled;
            flag.store(true, Ordering::Relaxed);
            let err = src.refill(&mut win).unwrap_err();
            assert!(
                !is_transient_io(&err),
                "interrupt errors must never be retried away"
            );
            assert!(err.to_string().contains("interrupted"), "got: {err}");
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn precount_respects_interrupt_flag() {
        let mut content = Vec::new();
        for i in 0..5000 {
            content.extend_from_slice(format!("{i},x\n").as_bytes());
        }
        let p = tmp_file("precount_intr", &content);
        let range = LineRange {
            start: 0,
            end: content.len() as u64,
        };
        let tripped = Arc::new(AtomicBool::new(true));
        let err = count_lines_in_range_ctl(&p, 4096, 0, range, IoProfile::default(), Some(tripped))
            .unwrap_err();
        assert!(err.to_string().contains("interrupted"), "got: {err}");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn lines_across_block_boundaries() {
        let content = b"aaaa,1\nbbbb,2\ncccc,3\n";
        let p = tmp_file("blocks", content);
        // Block size is clamped to >= 4096 so use content larger than that
        // to exercise boundary handling separately below; here verify basic
        // correctness.
        let lines = collect_lines(&p, 4096);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], (0, 0, b"aaaa,1".to_vec()));
        assert_eq!(lines[1].1, 7);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn long_lines_grow_buffer() {
        let long = vec![b'x'; 10_000];
        let mut content = long.clone();
        content.push(b'\n');
        content.extend_from_slice(b"tail");
        let p = tmp_file("long", &content);
        let lines = collect_lines(&p, 4096);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].2.len(), 10_000);
        assert_eq!(lines[1].2, b"tail");
        assert_eq!(lines[1].1, 10_001);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn crlf_is_trimmed() {
        let p = tmp_file("crlf", b"a,b\r\nc,d\r\n");
        let lines = collect_lines(&p, 4096);
        assert_eq!(lines[0].2, b"a,b");
        assert_eq!(lines[1].2, b"c,d");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn counters_track_bytes() {
        let p = tmp_file("counters", b"1\n2\n3\n");
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        while sc.next_line().unwrap().is_some() {}
        assert_eq!(sc.counters().bytes_read, 6);
        assert!(sc.counters().read_calls >= 1);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn seek_resumes_mid_file() {
        let p = tmp_file("seek", b"aa\nbb\ncc\n");
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        sc.seek_to(3, 1).unwrap();
        let l = sc.next_line().unwrap().unwrap();
        assert_eq!(l.bytes, b"bb");
        assert_eq!(l.line_no, 1);
        assert_eq!(l.offset, 3);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn meta_detects_append_and_replace() {
        let p = tmp_file("meta", b"header\n1,2\n");
        let m0 = RawFileMeta::probe(&p).unwrap();
        assert_eq!(m0.classify_change(&p).unwrap(), FileChange::Unchanged);

        // Append.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(b"3,4\n").unwrap();
        }
        assert_eq!(
            m0.classify_change(&p).unwrap(),
            FileChange::Appended { old_len: m0.len }
        );

        // Replace with different head.
        let m1 = RawFileMeta::probe(&p).unwrap();
        std::fs::write(&p, b"different!\n").unwrap();
        assert_eq!(m1.classify_change(&p).unwrap(), FileChange::Replaced);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_file_yields_no_lines() {
        let p = tmp_file("empty", b"");
        assert!(collect_lines(&p, 4096).is_empty());
        std::fs::remove_file(p).unwrap();
    }

    fn gen_lines(n: usize) -> Vec<u8> {
        let mut content = Vec::new();
        for i in 0..n {
            content.extend_from_slice(format!("row{i},{},{}\n", i * 7, i % 13).as_bytes());
        }
        content
    }

    #[test]
    fn partitions_cover_every_line_once() {
        let content = gen_lines(257);
        let p = tmp_file("partition", &content);
        let whole = collect_lines(&p, 4096);
        for parts in [1usize, 2, 3, 7, 16, 300] {
            let ranges = partition_line_ranges(&p, parts).unwrap();
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, content.len() as u64);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must tile");
            }
            let mut merged = Vec::new();
            for r in &ranges {
                let mut sc = RangeScanner::open(&p, 4096, *r, 0).unwrap();
                while let Some(l) = sc.next_line().unwrap() {
                    assert!(l.offset >= r.start && l.offset < r.end);
                    merged.push((l.offset, l.bytes.to_vec()));
                }
            }
            let expect: Vec<(u64, Vec<u8>)> =
                whole.iter().map(|(_, o, b)| (*o, b.clone())).collect();
            assert_eq!(merged, expect, "parts = {parts}");
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partition_of_empty_file_is_empty() {
        let p = tmp_file("partition_empty", b"");
        assert!(partition_line_ranges(&p, 4).unwrap().is_empty());
        std::fs::remove_file(p).unwrap();
    }

    /// Regression: a capped partitioning covers exactly `[0, cap)` even
    /// when the file on disk is longer (it grew after the cap was
    /// fingerprinted), for both the probing and the tiny-file paths.
    #[test]
    fn capped_partitions_ignore_bytes_past_cap() {
        let content = gen_lines(100);
        // Cap at a line boundary ~60% in.
        let cap = {
            let target = content.len() * 6 / 10;
            let nl = content[..target].iter().rposition(|&b| b == b'\n').unwrap();
            (nl + 1) as u64
        };
        let p = tmp_file("partition_capped", &content);
        for parts in [1usize, 3, 8] {
            let ranges = partition_line_ranges_capped(&p, parts, cap).unwrap();
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, cap, "parts={parts}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
        std::fs::remove_file(&p).unwrap();

        // Tiny-file path: cap smaller than `parts`.
        let p = tmp_file("partition_capped_tiny", b"a\nb\nc\nd\n");
        let ranges = partition_line_ranges_capped(&p, 16, 4).unwrap();
        assert_eq!(ranges.last().unwrap().end, 4);
        let owned: u64 = ranges.iter().map(|r| r.end - r.start).sum();
        assert_eq!(owned, 4, "exactly the capped prefix is covered");
        std::fs::remove_file(p).unwrap();
    }

    /// A cap at or above the file length is a no-op (same ranges as the
    /// uncapped partitioner), and a cap of zero yields no ranges.
    #[test]
    fn capped_partitions_degenerate_cases() {
        let content = gen_lines(50);
        let p = tmp_file("partition_cap_nop", &content);
        let plain = partition_line_ranges(&p, 4).unwrap();
        let capped = partition_line_ranges_capped(&p, 4, content.len() as u64).unwrap();
        assert_eq!(plain, capped);
        assert!(partition_line_ranges_capped(&p, 4, 0).unwrap().is_empty());
        std::fs::remove_file(p).unwrap();
    }

    /// `ended_short` distinguishes a file that shrank mid-scan from a clean
    /// range exhaustion.
    #[test]
    fn range_scanner_reports_short_end_after_truncation() {
        let content = gen_lines(200);
        let len = content.len() as u64;
        let p = tmp_file("range_short", &content);

        // Clean full-range scan: never short.
        let range = LineRange { start: 0, end: len };
        let mut sc = RangeScanner::open(&p, 4096, range, 0).unwrap();
        while let Some(_l) = sc.next_line().unwrap() {}
        assert!(!sc.ended_short(), "clean EOF at range end is not short");

        // Truncate mid-file, deliberately mid-line (3 bytes past a line
        // start; every generated row is longer than that), then scan the
        // full planned range: the scanner must (a) surface the torn final
        // line as short *before* `None`, and (b) still be short at `None`.
        let cut = {
            let nl = content[content.len() / 3..]
                .iter()
                .position(|&b| b == b'\n')
                .unwrap();
            content.len() / 3 + nl + 1 + 3
        };
        std::fs::write(&p, &content[..cut]).unwrap();
        let mut sc = RangeScanner::open(&p, 4096, range, 0).unwrap();
        let mut short_seen_on_line = false;
        while let Some(_l) = sc.next_line().unwrap() {
            if sc.ended_short() {
                short_seen_on_line = true;
            }
        }
        assert!(
            short_seen_on_line,
            "torn final line must be flagged before parse"
        );
        assert!(sc.ended_short(), "exhaustion before range end is short");
        std::fs::remove_file(p).unwrap();
    }

    /// Regression: ranges must tile `[0, len)` exactly and a `RangeScanner`
    /// sweep over them must reproduce the whole-file line sequence.
    fn assert_partitions_cover(p: &Path, parts: usize) {
        let len = std::fs::metadata(p).unwrap().len();
        let whole = collect_lines(p, 4096);
        let ranges = partition_line_ranges(p, parts).unwrap();
        if len == 0 {
            assert!(ranges.is_empty());
            return;
        }
        assert_eq!(ranges[0].start, 0, "parts={parts}");
        assert_eq!(ranges.last().unwrap().end, len, "parts={parts}");
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "parts={parts}: ranges must tile");
        }
        let mut merged = Vec::new();
        for r in &ranges {
            let mut sc = RangeScanner::open(p, 4096, *r, 0).unwrap();
            while let Some(l) = sc.next_line().unwrap() {
                merged.push((l.offset, l.bytes.to_vec()));
            }
        }
        let expect: Vec<(u64, Vec<u8>)> = whole.iter().map(|(_, o, b)| (*o, b.clone())).collect();
        assert_eq!(merged, expect, "parts={parts}: lines dropped or duplicated");
    }

    #[test]
    fn partitions_keep_final_line_without_trailing_newline() {
        // The last line is unterminated; no partitioning may drop it, and a
        // cut landing inside it must collapse into the final range.
        for content in [
            b"a,b".to_vec(),                                  // single unterminated line
            b"a,b\nc,d\ne,f".to_vec(),                        // unterminated tail
            [b"x".repeat(9000), b"\ntail".to_vec()].concat(), // long line + tail
        ] {
            let p = tmp_file("partition_notrail", &content);
            for parts in [1usize, 2, 3, 8, 64] {
                assert_partitions_cover(&p, parts);
            }
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn partitions_of_single_line_longer_than_partition() {
        // One line dwarfing every byte target: all cuts snap past it (or to
        // EOF) and must still yield non-overlapping, fully covering ranges.
        let mut content = b"y".repeat(40_000);
        content.push(b'\n');
        let p = tmp_file("partition_oneline", &content);
        for parts in [2usize, 7, 100] {
            let ranges = partition_line_ranges(&p, parts).unwrap();
            assert_eq!(
                ranges,
                vec![LineRange {
                    start: 0,
                    end: content.len() as u64
                }],
                "parts={parts}: cuts inside the only line must collapse"
            );
            assert_partitions_cover(&p, parts);
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partitions_of_empty_and_newline_only_files() {
        for content in [b"".to_vec(), b"\n".to_vec(), b"\n\n\n".to_vec()] {
            let p = tmp_file("partition_nl", &content);
            for parts in [1usize, 2, 5] {
                assert_partitions_cover(&p, parts);
            }
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn tiny_files_get_exactly_min_parts_lines_partitions() {
        // Regression: equal-byte snapping on files smaller than `parts`
        // bytes used to collapse cuts and return fewer partitions than the
        // line count supports. Such files must now split line-exactly into
        // min(parts, lines) ranges.
        for (content, parts, lines) in [
            (b"a\nb\nc\n".to_vec(), 8usize, 3usize), // 6 bytes < 8 parts
            (b"a\nb\nc\n".to_vec(), 7, 3),
            (b"a\nb".to_vec(), 8, 2), // unterminated tail line
            (b"\n\n\n\n".to_vec(), 6, 4),
            (b"x,y\n".to_vec(), 9, 1),
        ] {
            let p = tmp_file("partition_tiny", &content);
            let ranges = partition_line_ranges(&p, parts).unwrap();
            assert_eq!(
                ranges.len(),
                parts.min(lines),
                "content {:?} parts {parts}: want exactly min(parts, lines)",
                String::from_utf8_lossy(&content)
            );
            assert_partitions_cover(&p, parts);
            std::fs::remove_file(p).unwrap();
        }
        // At or above the byte threshold the snapping path still applies.
        let p = tmp_file("partition_tiny_edge", b"a\nb\nc\n");
        let ranges = partition_line_ranges(&p, 6).unwrap();
        assert!(!ranges.is_empty() && ranges.len() <= 6);
        assert_partitions_cover(&p, 6);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn range_scanner_reads_little_beyond_its_slice() {
        // Regression: a RangeScanner over a small slice of a big file must
        // not pull a whole block past its range — that amplified I/O by
        // block_size / slice_len under fine-grained partition slicing.
        let content = gen_lines(4000); // ~50 KiB
        let p = tmp_file("readcap", &content);
        let len = content.len() as u64;
        let ranges = partition_line_ranges(&p, 16).unwrap();
        let mut total = 0u64;
        for r in &ranges {
            let mut sc = RangeScanner::open(&p, 1 << 20, *r, 0).unwrap();
            while sc.next_line().unwrap().is_some() {}
            let io = sc.take_counters();
            assert!(
                io.bytes_read <= (r.end - r.start) + 2 * 4096,
                "slice {:?} read {} bytes",
                r,
                io.bytes_read
            );
            total += io.bytes_read;
        }
        assert!(
            total <= len + ranges.len() as u64 * 2 * 4096,
            "whole sweep read {total} bytes of a {len}-byte file"
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn count_lines_in_range_matches_range_scanner() {
        // The counting-only pre-count pass must agree with the full scanner
        // on every partitioning, including unterminated tails and newline
        // runs straddling block boundaries.
        let mut contents = vec![
            gen_lines(257),
            b"a,b".to_vec(),
            b"a,b\nc,d\ne,f".to_vec(),
            b"\n\n\n".to_vec(),
        ];
        let mut long = vec![b'z'; 9000];
        long.extend_from_slice(b"\nshort\n");
        contents.push(long);
        for content in contents {
            let p = tmp_file("count_range", &content);
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = partition_line_ranges(&p, parts).unwrap();
                for r in &ranges {
                    let (counted, io) = count_lines_in_range(&p, 4096, *r).unwrap();
                    let mut sc = RangeScanner::open(&p, 4096, *r, 0).unwrap();
                    let mut scanned = 0u64;
                    while sc.next_line().unwrap().is_some() {
                        scanned += 1;
                    }
                    assert_eq!(counted, scanned, "parts={parts} range={r:?}");
                    assert!(io.bytes_read <= r.end - r.start);
                }
            }
            std::fs::remove_file(p).unwrap();
        }
        // Degenerate empty range.
        let p = tmp_file("count_range_empty", b"a\nb\n");
        let (n, io) = count_lines_in_range(&p, 4096, LineRange { start: 2, end: 2 }).unwrap();
        assert_eq!((n, io.bytes_read), (0, 0));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partition_snaps_to_line_starts() {
        // One huge line followed by short ones: every cut lands after the
        // huge line or collapses entirely.
        let mut content = vec![b'x'; 9000];
        content.push(b'\n');
        content.extend_from_slice(b"a,b\nc,d\n");
        let p = tmp_file("partition_snap", &content);
        let ranges = partition_line_ranges(&p, 4).unwrap();
        for r in &ranges[1..] {
            assert!(
                r.start == 9001 || content[r.start as usize - 1] == b'\n',
                "range start {} is not a line start",
                r.start
            );
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn fused_scan_matches_next_line_plus_tokenizer() {
        use crate::tokenizer::TokenizerConfig;
        let content = gen_lines(113);
        let p = tmp_file("fused", &content);
        for upto in [0usize, 1, 2, usize::MAX] {
            let mut a = BlockScanner::open(&p, 4096).unwrap();
            let mut b = BlockScanner::open(&p, 4096).unwrap();
            let cfg = TokenizerConfig::default();
            let mut ta = Tokens::new();
            let mut tb = Tokens::new();
            loop {
                let la = a
                    .next_line_tokenized(b',', upto, &mut ta)
                    .unwrap()
                    .map(|l| (l.line_no, l.offset, l.bytes.to_vec()));
                let lb = b
                    .next_line()
                    .unwrap()
                    .map(|l| (l.line_no, l.offset, l.bytes.to_vec()));
                assert_eq!(la, lb, "upto = {upto}");
                let Some((_, _, line)) = lb else { break };
                cfg.tokenize_selective(&line, upto, &mut tb);
                assert_eq!(ta.len(), tb.len(), "upto = {upto} line {line:?}");
                assert_eq!(ta.reached_end_of_line(), tb.reached_end_of_line());
                for f in 0..tb.len() {
                    assert_eq!(ta.get(f), tb.get(f), "upto = {upto} field {f}");
                }
            }
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn fused_scan_handles_crlf_and_unterminated_tail() {
        let p = tmp_file("fused_crlf", b"a,b\r\nlong,unterminated");
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        let mut t = Tokens::new();
        {
            let l = sc
                .next_line_tokenized(b',', usize::MAX, &mut t)
                .unwrap()
                .unwrap();
            assert_eq!(l.bytes, b"a,b");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(1).map(|s| (s.start, s.end)),
            Some((2, 3)),
            "CR excluded"
        );
        {
            let l = sc
                .next_line_tokenized(b',', usize::MAX, &mut t)
                .unwrap()
                .unwrap();
            assert_eq!(l.bytes, b"long,unterminated");
        }
        assert_eq!(t.len(), 2);
        assert!(t.reached_end_of_line());
        assert!(sc
            .next_line_tokenized(b',', usize::MAX, &mut t)
            .unwrap()
            .is_none());
        std::fs::remove_file(p).unwrap();
    }

    fn collect_lines_readahead(path: &Path, block: usize, ra: usize) -> Vec<(u64, u64, Vec<u8>)> {
        // Drive the prefetch pipeline directly: the `make_source` factory
        // degrades single-block files to sync, which would leave the
        // pipeline's EOF/tiny-file edge paths untested here.
        let src = ReadaheadBlocks::open(path, block, ra).unwrap();
        let mut sc = BlockScanner::from_source(Box::new(src));
        let mut out = Vec::new();
        while let Some(l) = sc.next_line().unwrap() {
            out.push((l.line_no, l.offset, l.bytes.to_vec()));
        }
        out
    }

    /// Regression: every read-ahead depth must reproduce the synchronous
    /// line stream exactly — same bytes, same offsets — including at
    /// partition boundaries, where per-slice scanners seek mid-file and cap
    /// their reads at the range end.
    #[test]
    fn readahead_matches_sync_at_partition_boundaries() {
        let content = gen_lines(1500); // spans several 4 KiB blocks
        let p = tmp_file("ra_parts", &content);
        let whole = collect_lines(&p, 4096);
        for ra in [1usize, 2, 8] {
            assert_eq!(
                collect_lines_readahead(&p, 4096, ra),
                whole,
                "readahead {ra}: whole-file stream"
            );
            for parts in [2usize, 7, 16] {
                let ranges = partition_line_ranges(&p, parts).unwrap();
                let mut merged = Vec::new();
                for r in &ranges {
                    let mut sc = RangeScanner::open_with_readahead(&p, 4096, ra, *r, 0).unwrap();
                    while let Some(l) = sc.next_line().unwrap() {
                        assert!(l.offset >= r.start && l.offset < r.end);
                        merged.push((l.offset, l.bytes.to_vec()));
                    }
                }
                let expect: Vec<(u64, Vec<u8>)> =
                    whole.iter().map(|(_, o, b)| (*o, b.clone())).collect();
                assert_eq!(merged, expect, "readahead {ra} parts {parts}");
            }
        }
        std::fs::remove_file(p).unwrap();
    }

    /// Regression: EOF arriving mid-block — an unterminated final line, a
    /// file ending exactly on a block boundary, and newline-only content —
    /// must look identical through every source.
    #[test]
    fn readahead_handles_eof_mid_block() {
        let mut exact_block = gen_lines(300);
        exact_block.truncate(4096); // cut mid-line: unterminated tail
        for content in [
            b"a,b\nc,d\nunterminated tail".to_vec(),
            exact_block,
            b"\n\n\n".to_vec(),
            [gen_lines(200), b"last line no newline".to_vec()].concat(),
        ] {
            let p = tmp_file("ra_eof", &content);
            let whole = collect_lines(&p, 4096);
            for ra in [1usize, 2, 8] {
                assert_eq!(
                    collect_lines_readahead(&p, 4096, ra),
                    whole,
                    "readahead {ra} content len {}",
                    content.len()
                );
            }
            std::fs::remove_file(p).unwrap();
        }
    }

    /// Regression: files smaller than one block (including empty) through
    /// the prefetch pipeline.
    #[test]
    fn readahead_handles_tiny_files() {
        for content in [
            b"".to_vec(),
            b"x".to_vec(),
            b"a,b\n".to_vec(),
            b"a,b\nc,d\n".to_vec(),
        ] {
            let p = tmp_file("ra_tiny", &content);
            let whole = collect_lines(&p, 4096);
            for ra in [1usize, 2, 8] {
                assert_eq!(
                    collect_lines_readahead(&p, 4096, ra),
                    whole,
                    "readahead {ra} tiny file {:?}",
                    String::from_utf8_lossy(&content)
                );
            }
            std::fs::remove_file(p).unwrap();
        }
    }

    /// Lines longer than the block (and the headroom) force the prefetcher's
    /// copying fallback; seeks restart the pipeline. Both must stay exact.
    #[test]
    fn readahead_long_lines_and_seek() {
        let mut content = vec![b'x'; 30_000]; // dwarfs block and headroom
        content.push(b'\n');
        content.extend_from_slice(b"tail,1\nmore,2\n");
        let p = tmp_file("ra_long", &content);
        let whole = collect_lines(&p, 4096);
        for ra in [1usize, 4] {
            assert_eq!(collect_lines_readahead(&p, 4096, ra), whole);
            let mut sc = BlockScanner::open_with_readahead(&p, 4096, ra).unwrap();
            sc.seek_to(30_001, 1).unwrap();
            let l = sc.next_line().unwrap().unwrap();
            assert_eq!(
                (l.bytes.to_vec(), l.offset, l.line_no),
                (b"tail,1".to_vec(), 30_001, 1)
            );
            let l = sc.next_line().unwrap().unwrap();
            assert_eq!(l.bytes, b"more,2");
            assert!(sc.next_line().unwrap().is_none());
        }
        std::fs::remove_file(p).unwrap();
    }

    /// The fused tokenizing scan through the prefetcher must agree with the
    /// synchronous fused scan span for span.
    #[test]
    fn readahead_fused_scan_matches_sync() {
        let content = gen_lines(500);
        let p = tmp_file("ra_fused", &content);
        for upto in [1usize, usize::MAX] {
            let mut a = BlockScanner::open(&p, 4096).unwrap();
            let mut b = BlockScanner::open_with_readahead(&p, 4096, 2).unwrap();
            let mut ta = Tokens::new();
            let mut tb = Tokens::new();
            loop {
                let la = a
                    .next_line_tokenized(b',', upto, &mut ta)
                    .unwrap()
                    .map(|l| (l.line_no, l.offset, l.bytes.to_vec()));
                let lb = b
                    .next_line_tokenized(b',', upto, &mut tb)
                    .unwrap()
                    .map(|l| (l.line_no, l.offset, l.bytes.to_vec()));
                assert_eq!(la, lb, "upto = {upto}");
                assert_eq!(ta.len(), tb.len());
                for f in 0..ta.len() {
                    assert_eq!(ta.get(f), tb.get(f), "upto = {upto} field {f}");
                }
                if la.is_none() {
                    break;
                }
            }
        }
        std::fs::remove_file(p).unwrap();
    }

    /// The pre-count over a read-ahead source must agree with the
    /// synchronous count and never read past its range (hard limit).
    #[test]
    fn count_lines_with_readahead_matches_sync() {
        let content = gen_lines(700);
        let p = tmp_file("ra_count", &content);
        for parts in [1usize, 3, 16] {
            for r in partition_line_ranges(&p, parts).unwrap() {
                let (sync_n, sync_io) = count_lines_in_range(&p, 4096, r).unwrap();
                for ra in [1usize, 2, 8] {
                    let (n, io) = count_lines_in_range_with(&p, 4096, ra, r).unwrap();
                    assert_eq!(n, sync_n, "parts={parts} ra={ra} range={r:?}");
                    assert_eq!(io.bytes_read, sync_io.bytes_read, "hard limit respected");
                }
            }
        }
        std::fs::remove_file(p).unwrap();
    }

    /// Stall accounting: the synchronous source attributes its read time to
    /// `IoCounters::stall`; counters at readahead 0 keep the exact
    /// byte/call totals the pre-layer reader reported; and a full readahead
    /// scan reports identical bytes *and* read calls (the helper replays
    /// the sync read sequence, EOF marker included).
    #[test]
    fn stall_and_counter_accounting() {
        let content = gen_lines(2000);
        let p = tmp_file("ra_stall", &content);
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        while sc.next_line().unwrap().is_some() {}
        let io = sc.take_counters();
        assert_eq!(io.bytes_read, content.len() as u64);
        // One read per full 4 KiB block, plus the final short + EOF reads.
        assert_eq!(io.read_calls, (content.len() / 4096) as u64 + 2);
        assert!(io.stall > Duration::ZERO, "sync reads must count as stall");

        let mut ra = BlockScanner::open_with_readahead(&p, 4096, 2).unwrap();
        while ra.next_line().unwrap().is_some() {}
        let io_ra = ra.take_counters();
        assert_eq!(io_ra.bytes_read, io.bytes_read, "byte parity");
        assert_eq!(io_ra.read_calls, io.read_calls, "read-call parity");
        std::fs::remove_file(p).unwrap();
    }

    /// Past the soft cap the helper stops and the consumer reads the
    /// straddling tail itself, demand-driven — a range scanner with
    /// readahead must not read more than its sync twin plus the tail
    /// steps (no speculative pages thrown away at teardown).
    #[test]
    fn readahead_respects_read_cap_io() {
        let content = gen_lines(4000); // ~50 KiB
        let p = tmp_file("ra_cap", &content);
        for r in partition_line_ranges(&p, 3).unwrap() {
            let mut sync = RangeScanner::open(&p, 4096, r, 0).unwrap();
            while sync.next_line().unwrap().is_some() {}
            let io_sync = sync.take_counters();
            let mut ra = RangeScanner::open_with_readahead(&p, 4096, 8, r, 0).unwrap();
            while ra.next_line().unwrap().is_some() {}
            let io_ra = ra.take_counters();
            assert_eq!(io_ra.bytes_read, io_sync.bytes_read, "range {r:?}");
            assert_eq!(io_ra.read_calls, io_sync.read_calls, "range {r:?}");
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn fused_scan_across_block_boundaries() {
        // Lines sized so fields straddle the 4 KiB refill boundary.
        let mut content = Vec::new();
        for i in 0..200 {
            content.extend_from_slice(format!("{:0>40},{:0>40},{i}\n", i, i * 3).as_bytes());
        }
        let p = tmp_file("fused_blocks", &content);
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        let mut t = Tokens::new();
        let mut rows = 0;
        while let Some(l) = sc.next_line_tokenized(b',', usize::MAX, &mut t).unwrap() {
            let _ = l;
            assert_eq!(t.len(), 3);
            rows += 1;
        }
        assert_eq!(rows, 200);
        std::fs::remove_file(p).unwrap();
    }
}
