#![doc = " lint:cancellable — clean fixture: every scan loop polls."]

fn drain_batches(ctx: &QueryCtx, src: &mut Source) -> Result<u64, Error> {
    let mut rows = 0;
    loop {
        ctx.check()?;
        match src.next_batch() {
            Some(b) => rows += b.len() as u64,
            None => break,
        }
    }
    Ok(rows)
}

fn refill_driven(win: &mut Window, src: &mut dyn BlockSource) -> Result<(), Error> {
    // Advancing via `refill` is cancellable by construction: every source
    // polls its installed interrupt flag inside `refill`.
    while src.refill(win)? > 0 {
        consume(win);
    }
    Ok(())
}

fn row_arithmetic_is_not_a_scan(rows: &[u64]) -> u64 {
    let mut acc = 0;
    // No batch/block advance in this loop: the rule does not apply.
    for r in rows {
        acc += r;
    }
    acc
}

impl Iterator for Source {
    type Item = u64;
    // `for` in `impl … for …` is not a loop header.
    fn next(&mut self) -> Option<u64> {
        None
    }
}
