//! *Selective parsing*: byte-slice → [`Datum`] conversion.
//!
//! PostgresRaw only transforms to binary "the values required for the
//! remaining query plan" (§3). In this reproduction that discipline lives in
//! the scan operator; this module provides the per-field converters it calls,
//! with hand-rolled integer/boolean fast paths (field bytes are already in
//! cache after tokenizing, so conversion cost is pure CPU — exactly the cost
//! the paper's *Convert* breakdown slice measures).

use crate::datum::Datum;
use crate::error::RawCsvError;
use crate::schema::ColumnType;

/// Parse one raw field as `ty`. Empty fields are NULL.
///
/// `row` and `attr` are used only for error reporting.
pub fn parse_field(
    raw: &[u8],
    ty: ColumnType,
    row: u64,
    attr: usize,
) -> Result<Datum, RawCsvError> {
    if raw.is_empty() {
        return Ok(Datum::Null);
    }
    match ty {
        ColumnType::Int => parse_int(raw)
            .map(Datum::Int)
            .ok_or_else(|| parse_err(raw, "int", row, attr)),
        ColumnType::Float => parse_float(raw)
            .map(Datum::Float)
            .ok_or_else(|| parse_err(raw, "float", row, attr)),
        ColumnType::Bool => parse_bool(raw)
            .map(Datum::Bool)
            .ok_or_else(|| parse_err(raw, "bool", row, attr)),
        ColumnType::Str => Ok(Datum::Str(String::from_utf8_lossy(raw).into())),
    }
}

fn parse_err(raw: &[u8], ty: &'static str, row: u64, attr: usize) -> RawCsvError {
    let mut text = String::from_utf8_lossy(raw).into_owned();
    text.truncate(64);
    RawCsvError::ParseField {
        row,
        attr,
        ty,
        text,
    }
}

/// Hand-rolled `i64` parser: optional sign, decimal digits, overflow-checked.
///
/// Returns `None` on any deviation (whitespace, empty, overflow, stray
/// bytes) so callers can surface a typed error.
#[inline]
pub fn parse_int(raw: &[u8]) -> Option<i64> {
    let (neg, digits) = match raw.first()? {
        b'-' => (true, &raw[1..]),
        b'+' => (false, &raw[1..]),
        _ => (false, raw),
    };
    // More than 19 digits always overflows i64; 19 digits may overflow, which
    // the checked arithmetic below catches.
    if digits.is_empty() || digits.len() > 19 {
        return None;
    }
    // Accumulate negatively so i64::MIN parses without overflow.
    let mut acc: i64 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_sub(d as i64)?;
    }
    if neg {
        Some(acc)
    } else {
        acc.checked_neg()
    }
}

/// Float parser with a fast path for plain `[-]digits[.digits]` forms (the
/// overwhelmingly common shape in data files) and a std fallback for
/// scientific notation and other valid forms.
#[inline]
pub fn parse_float(raw: &[u8]) -> Option<f64> {
    if let Some(v) = parse_float_simple(raw) {
        return Some(v);
    }
    std::str::from_utf8(raw).ok()?.parse::<f64>().ok()
}

/// Fast path: sign, up to 15 integer digits, optional fraction of up to 15
/// digits. Everything here is exactly representable arithmetic on small
/// integers, so results match `str::parse::<f64>` bit-for-bit in this range.
#[inline]
fn parse_float_simple(raw: &[u8]) -> Option<f64> {
    let (neg, body) = match raw.first()? {
        b'-' => (true, &raw[1..]),
        b'+' => (false, &raw[1..]),
        _ => (false, raw),
    };
    let mut int_part: u64 = 0;
    let mut i = 0;
    while i < body.len() {
        let d = body[i].wrapping_sub(b'0');
        if d > 9 {
            break;
        }
        int_part = int_part.checked_mul(10)?.checked_add(d as u64)?;
        i += 1;
    }
    if i == 0 && (body.len() <= 1 || body[0] != b'.') {
        return None;
    }
    if int_part > (1u64 << 52) {
        return None; // beyond exact f64 integers: take the slow path
    }
    let mut value = int_part as f64;
    if i < body.len() {
        if body[i] != b'.' {
            return None; // exponent or junk: slow path decides
        }
        i += 1;
        let frac_start = i;
        let mut frac: u64 = 0;
        while i < body.len() {
            let d = body[i].wrapping_sub(b'0');
            if d > 9 {
                return None;
            }
            frac = frac.checked_mul(10)?.checked_add(d as u64)?;
            i += 1;
        }
        let ndigits = i - frac_start;
        if ndigits == 0 || ndigits > 15 || frac > (1u64 << 52) {
            return None;
        }
        value += frac as f64 / POW10[ndigits];
    }
    Some(if neg { -value } else { value })
}

const POW10: [f64; 16] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
];

/// Boolean parser accepting `true/false`, `t/f`, `1/0`, case-insensitive.
#[inline]
pub fn parse_bool(raw: &[u8]) -> Option<bool> {
    match raw {
        b"1" | b"t" | b"T" => Some(true),
        b"0" | b"f" | b"F" => Some(false),
        _ if raw.eq_ignore_ascii_case(b"true") => Some(true),
        _ if raw.eq_ignore_ascii_case(b"false") => Some(false),
        _ => None,
    }
}

/// Unescape a quoted CSV field in which quotes are doubled; used by the
/// tokenizer's quoted path when materializing strings.
pub fn unescape_quoted(raw: &[u8], quote: u8) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let b = raw[i];
        if b == quote && i + 1 < raw.len() && raw[i + 1] == quote {
            out.push(quote as char);
            i += 2;
        } else {
            out.push(b as char);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_parses_signs_and_bounds() {
        assert_eq!(parse_int(b"0"), Some(0));
        assert_eq!(parse_int(b"-42"), Some(-42));
        assert_eq!(parse_int(b"+7"), Some(7));
        assert_eq!(parse_int(b"9223372036854775807"), Some(i64::MAX));
        assert_eq!(parse_int(b"-9223372036854775808"), Some(i64::MIN));
        assert_eq!(parse_int(b"9223372036854775808"), None); // overflow
        assert_eq!(parse_int(b""), None);
        assert_eq!(parse_int(b"-"), None);
        assert_eq!(parse_int(b"12a"), None);
        assert_eq!(parse_int(b" 1"), None);
    }

    #[test]
    fn float_fast_path_matches_std() {
        for s in ["0", "3.5", "-12.25", "100000.0001", "+0.5", "7"] {
            assert_eq!(
                parse_float(s.as_bytes()),
                Some(s.parse::<f64>().unwrap()),
                "{s}"
            );
        }
    }

    #[test]
    fn float_slow_path_handles_exponents() {
        assert_eq!(parse_float(b"1e3"), Some(1000.0));
        assert_eq!(parse_float(b"-2.5E-2"), Some(-0.025));
        assert_eq!(parse_float(b"inf"), Some(f64::INFINITY));
        assert_eq!(parse_float(b"abc"), None);
    }

    #[test]
    fn bool_variants() {
        assert_eq!(parse_bool(b"1"), Some(true));
        assert_eq!(parse_bool(b"F"), Some(false));
        assert_eq!(parse_bool(b"TRUE"), Some(true));
        assert_eq!(parse_bool(b"False"), Some(false));
        assert_eq!(parse_bool(b"yes"), None);
    }

    #[test]
    fn parse_field_empty_is_null() {
        assert_eq!(
            parse_field(b"", ColumnType::Int, 0, 0).unwrap(),
            Datum::Null
        );
    }

    #[test]
    fn parse_field_error_reports_location() {
        let err = parse_field(b"xx", ColumnType::Int, 7, 3).unwrap_err();
        match err {
            RawCsvError::ParseField { row, attr, ty, .. } => {
                assert_eq!((row, attr, ty), (7, 3, "int"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unescape_doubles() {
        assert_eq!(unescape_quoted(br#"a""b"#, b'"'), "a\"b");
        assert_eq!(unescape_quoted(b"plain", b'"'), "plain");
    }
}
