//! Resolved expressions and their evaluation.
//!
//! [`RExpr`] mirrors the parser's AST with column *names* replaced by column
//! *positions*. The position space is contextual: a predicate pushed into a
//! scan indexes the scan's requested-attribute list; expressions above the
//! scan index batch columns. Evaluation follows SQL three-valued logic.

use std::cmp::Ordering;

use nodb_rawcache::TypedColumn;
use nodb_rawcsv::Datum;
use nodb_sqlparse::ast::{AggFunc, BinOp, Expr, Literal};

use crate::batch::{ColView, RowAccess, ViewRow};
use crate::error::{EngineError, EngineResult};

/// A resolved (column-index-based) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Column at a position in the contextual row.
    Col(usize),
    /// Constant.
    Const(Datum),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<RExpr>,
        /// Right operand.
        right: Box<RExpr>,
    },
    /// Numeric negation.
    Neg(Box<RExpr>),
    /// Boolean NOT (3VL).
    Not(Box<RExpr>),
    /// BETWEEN (inclusive, possibly negated).
    Between {
        /// Tested expression.
        expr: Box<RExpr>,
        /// Lower bound.
        lo: Box<RExpr>,
        /// Upper bound.
        hi: Box<RExpr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// IN list (possibly negated).
    InList {
        /// Tested expression.
        expr: Box<RExpr>,
        /// Elements.
        list: Vec<RExpr>,
        /// NOT IN.
        negated: bool,
    },
    /// LIKE with a precompiled pattern.
    Like {
        /// Tested expression.
        expr: Box<RExpr>,
        /// Compiled matcher.
        pattern: LikePattern,
        /// NOT LIKE.
        negated: bool,
    },
    /// IS [NOT] NULL.
    IsNull {
        /// Tested expression.
        expr: Box<RExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl RExpr {
    /// Column positions referenced by this expression, deduplicated.
    pub fn columns(&self, out: &mut Vec<usize>) {
        match self {
            RExpr::Col(c) => {
                if !out.contains(c) {
                    out.push(*c);
                }
            }
            RExpr::Const(_) => {}
            RExpr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            RExpr::Neg(e) | RExpr::Not(e) => e.columns(out),
            RExpr::Between { expr, lo, hi, .. } => {
                expr.columns(out);
                lo.columns(out);
                hi.columns(out);
            }
            RExpr::InList { expr, list, .. } => {
                expr.columns(out);
                for e in list {
                    e.columns(out);
                }
            }
            RExpr::Like { expr, .. } | RExpr::IsNull { expr, .. } => expr.columns(out),
        }
    }

    /// Rewrite every column index through `f` (used to translate between
    /// index spaces, e.g. file attributes → scan positions).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> RExpr {
        match self {
            RExpr::Col(c) => RExpr::Col(f(*c)),
            RExpr::Const(d) => RExpr::Const(d.clone()),
            RExpr::Binary { op, left, right } => RExpr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            RExpr::Neg(e) => RExpr::Neg(Box::new(e.map_columns(f))),
            RExpr::Not(e) => RExpr::Not(Box::new(e.map_columns(f))),
            RExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => RExpr::Between {
                expr: Box::new(expr.map_columns(f)),
                lo: Box::new(lo.map_columns(f)),
                hi: Box::new(hi.map_columns(f)),
                negated: *negated,
            },
            RExpr::InList {
                expr,
                list,
                negated,
            } => RExpr::InList {
                expr: Box::new(expr.map_columns(f)),
                list: list.iter().map(|e| e.map_columns(f)).collect(),
                negated: *negated,
            },
            RExpr::Like {
                expr,
                pattern,
                negated,
            } => RExpr::Like {
                expr: Box::new(expr.map_columns(f)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            RExpr::IsNull { expr, negated } => RExpr::IsNull {
                expr: Box::new(expr.map_columns(f)),
                negated: *negated,
            },
        }
    }

    /// Evaluate against one row. Scalar results are datums; boolean results
    /// are `Datum::Bool` or `Datum::Null` (unknown).
    pub fn eval<R: RowAccess>(&self, row: &R) -> Datum {
        match self {
            RExpr::Col(c) => row.value(*c),
            RExpr::Const(d) => d.clone(),
            RExpr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            RExpr::Neg(e) => match e.eval(row) {
                Datum::Int(v) => Datum::Int(v.wrapping_neg()),
                Datum::Float(v) => Datum::Float(-v),
                _ => Datum::Null,
            },
            RExpr::Not(e) => match e.eval(row) {
                Datum::Bool(b) => Datum::Bool(!b),
                _ => Datum::Null,
            },
            RExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval(row);
                let lo = lo.eval(row);
                let hi = hi.eval(row);
                let ge_lo = compare_bool(&v, &lo, |o| o != Ordering::Less);
                let le_hi = compare_bool(&v, &hi, |o| o != Ordering::Greater);
                let within = and3(ge_lo, le_hi);
                negate3(within, *negated)
            }
            RExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Datum::Null;
                }
                let mut saw_null = false;
                for e in list {
                    let item = e.eval(row);
                    match v.sql_cmp(&item) {
                        Some(Ordering::Equal) => return negate3(Some(true), *negated),
                        None if item.is_null() => saw_null = true,
                        _ => {}
                    }
                }
                if saw_null {
                    Datum::Null
                } else {
                    negate3(Some(false), *negated)
                }
            }
            RExpr::Like {
                expr,
                pattern,
                negated,
            } => match expr.eval(row) {
                Datum::Str(s) => negate3(Some(pattern.matches(&s)), *negated),
                Datum::Null => Datum::Null,
                _ => Datum::Null,
            },
            RExpr::IsNull { expr, negated } => {
                let is_null = expr.eval(row).is_null();
                Datum::Bool(is_null != *negated)
            }
        }
    }

    /// Evaluate as a filter: `true` only when the result is `Bool(true)`
    /// (SQL WHERE discards both false and unknown).
    #[inline]
    pub fn eval_filter<R: RowAccess>(&self, row: &R) -> bool {
        matches!(self.eval(row), Datum::Bool(true))
    }

    /// Vectorized WHERE over columnar views: the ascending view-row indices
    /// in `[0, rows)` for which this predicate evaluates to `Bool(true)`.
    ///
    /// Conjunctions refine the selection vector kernel by kernel; supported
    /// shapes (comparison / BETWEEN / IN-list / LIKE / IS NULL over a column
    /// and constants, and OR-trees of them) run as typed loops over the
    /// column storage with no per-row `Datum` materialization. Any other
    /// sub-expression falls back to row-at-a-time [`Self::eval_filter`] over
    /// the *current* candidates, so the result is always exactly the
    /// row-at-a-time answer — the kernels are a fast path, never a semantic
    /// change (property-tested below and in `tests/property_based.rs`).
    pub fn filter_columnar(&self, cols: &[ColView<'_>], rows: usize) -> Vec<u32> {
        let mut sel: Option<Vec<u32>> = None;
        self.refine_columnar(cols, rows, &mut sel);
        sel.unwrap_or_else(|| (0..rows as u32).collect())
    }

    /// Narrow `sel` (None = all rows) to the rows passing this predicate.
    fn refine_columnar(&self, cols: &[ColView<'_>], rows: usize, sel: &mut Option<Vec<u32>>) {
        if let RExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } = self
        {
            left.refine_columnar(cols, rows, sel);
            right.refine_columnar(cols, rows, sel);
            return;
        }
        if !self.kernel(cols, rows, sel) {
            retain_rows(rows, sel, |i| self.eval_filter(&ViewRow { cols, row: i }));
        }
    }

    /// Try the typed kernel for this (non-AND) predicate shape. Returns
    /// `false` when no kernel applies — the caller then evaluates
    /// row-at-a-time.
    fn kernel(&self, cols: &[ColView<'_>], rows: usize, sel: &mut Option<Vec<u32>>) -> bool {
        match self {
            RExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                // AND below an OR: both sides must kernelize, else the whole
                // subtree is handed back for row-wise evaluation.
                let mut narrowed = sel.clone();
                if left.kernel(cols, rows, &mut narrowed) && right.kernel(cols, rows, &mut narrowed)
                {
                    *sel = narrowed;
                    true
                } else {
                    false
                }
            }
            RExpr::Binary {
                op: BinOp::Or,
                left,
                right,
            } => {
                let mut ls = sel.clone();
                let mut rs = sel.clone();
                if left.kernel(cols, rows, &mut ls) && right.kernel(cols, rows, &mut rs) {
                    let l = ls.unwrap_or_else(|| (0..rows as u32).collect());
                    let r = rs.unwrap_or_else(|| (0..rows as u32).collect());
                    *sel = Some(union_sorted(&l, &r));
                    true
                } else {
                    false
                }
            }
            RExpr::Binary { op, left, right } => {
                let pred = match op {
                    BinOp::Eq => |o: Ordering| o == Ordering::Equal,
                    BinOp::NotEq => |o: Ordering| o != Ordering::Equal,
                    BinOp::Lt => |o: Ordering| o == Ordering::Less,
                    BinOp::Le => |o: Ordering| o != Ordering::Greater,
                    BinOp::Gt => |o: Ordering| o == Ordering::Greater,
                    BinOp::Ge => |o: Ordering| o != Ordering::Less,
                    _ => return false, // arithmetic is not a filter shape
                };
                let (col, konst, flipped) = match (&**left, &**right) {
                    (RExpr::Col(c), RExpr::Const(k)) => (*c, k, false),
                    (RExpr::Const(k), RExpr::Col(c)) => (*c, k, true),
                    _ => return false,
                };
                let Some(tc) = typed_col(cols, col) else {
                    return false;
                };
                retain_rows(rows, sel, |i| {
                    // sql_cmp(k, v) is the exact reverse of sql_cmp(v, k)
                    // whenever either is Some, so one typed compare serves
                    // both operand orders.
                    match typed_cmp(tc.0, tc.1 + i, konst) {
                        Some(o) => pred(if flipped { o.reverse() } else { o }),
                        None => false,
                    }
                });
                true
            }
            RExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let (RExpr::Col(c), RExpr::Const(lo), RExpr::Const(hi)) = (&**expr, &**lo, &**hi)
                else {
                    return false;
                };
                let Some(tc) = typed_col(cols, *c) else {
                    return false;
                };
                let negated = *negated;
                retain_rows(rows, sel, |i| {
                    let p = tc.1 + i;
                    let ge_lo = typed_cmp(tc.0, p, lo).map(|o| o != Ordering::Less);
                    let le_hi = typed_cmp(tc.0, p, hi).map(|o| o != Ordering::Greater);
                    match and3(ge_lo, le_hi) {
                        Some(b) => b != negated,
                        None => false,
                    }
                });
                true
            }
            RExpr::InList {
                expr,
                list,
                negated,
            } => {
                let RExpr::Col(c) = &**expr else {
                    return false;
                };
                let items: Option<Vec<&Datum>> = list
                    .iter()
                    .map(|e| match e {
                        RExpr::Const(d) => Some(d),
                        _ => None,
                    })
                    .collect();
                let Some(items) = items else { return false };
                let Some(tc) = typed_col(cols, *c) else {
                    return false;
                };
                let negated = *negated;
                retain_rows(rows, sel, |i| {
                    let p = tc.1 + i;
                    if is_null_at(tc.0, p) {
                        return false;
                    }
                    let mut saw_null = false;
                    for item in &items {
                        match typed_cmp(tc.0, p, item) {
                            Some(Ordering::Equal) => return !negated,
                            None if item.is_null() => saw_null = true,
                            _ => {}
                        }
                    }
                    !saw_null && negated
                });
                true
            }
            RExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let RExpr::Col(c) = &**expr else {
                    return false;
                };
                let Some((col, base)) = typed_col(cols, *c) else {
                    return false;
                };
                let negated = *negated;
                match col {
                    TypedColumn::Str { values, nulls, .. } => {
                        retain_rows(rows, sel, |i| {
                            let p = base + i;
                            !nulls.is_null(p) && pattern.matches(&values[p]) != negated
                        });
                    }
                    // Non-string typed column: LIKE over a non-string value
                    // is UNKNOWN, so nothing passes.
                    _ => retain_rows(rows, sel, |_| false),
                }
                true
            }
            RExpr::IsNull { expr, negated } => {
                let RExpr::Col(c) = &**expr else {
                    return false;
                };
                let Some((col, base)) = typed_col(cols, *c) else {
                    return false;
                };
                let negated = *negated;
                retain_rows(rows, sel, |i| is_null_at(col, base + i) != negated);
                true
            }
            _ => false,
        }
    }
}

/// The typed column behind view position `c`, when it has one.
#[inline]
fn typed_col<'a>(cols: &'a [ColView<'a>], c: usize) -> Option<(&'a TypedColumn, usize)> {
    match cols.get(c) {
        Some(ColView::Typed { col, base }) => Some((col, *base)),
        _ => None,
    }
}

#[inline]
fn is_null_at(col: &TypedColumn, p: usize) -> bool {
    match col {
        TypedColumn::Int { nulls, .. }
        | TypedColumn::Float { nulls, .. }
        | TypedColumn::Bool { nulls, .. }
        | TypedColumn::Str { nulls, .. } => nulls.is_null(p),
    }
}

/// [`Datum::sql_cmp`] of the typed value at `p` against a constant, without
/// materializing the datum: `None` for NULL on either side or a type
/// mismatch, numerics compare across Int/Float.
#[inline]
fn typed_cmp(col: &TypedColumn, p: usize, rhs: &Datum) -> Option<Ordering> {
    match col {
        TypedColumn::Int { values, nulls } => {
            if nulls.is_null(p) {
                return None;
            }
            match rhs {
                Datum::Int(b) => Some(values[p].cmp(b)),
                Datum::Float(b) => (values[p] as f64).partial_cmp(b),
                _ => None,
            }
        }
        TypedColumn::Float { values, nulls } => {
            if nulls.is_null(p) {
                return None;
            }
            match rhs {
                Datum::Float(b) => values[p].partial_cmp(b),
                Datum::Int(b) => values[p].partial_cmp(&(*b as f64)),
                _ => None,
            }
        }
        TypedColumn::Str { values, nulls, .. } => {
            if nulls.is_null(p) {
                return None;
            }
            match rhs {
                Datum::Str(b) => Some(values[p].as_ref().cmp(&**b)),
                _ => None,
            }
        }
        TypedColumn::Bool { values, nulls } => {
            if nulls.is_null(p) {
                return None;
            }
            match rhs {
                Datum::Bool(b) => Some(values[p].cmp(b)),
                _ => None,
            }
        }
    }
}

/// Narrow a selection in place: `None` means "all `rows` rows" and becomes
/// the passing subset; `Some` retains only passing candidates.
fn retain_rows(rows: usize, sel: &mut Option<Vec<u32>>, mut keep: impl FnMut(usize) -> bool) {
    match sel {
        Some(s) => s.retain(|&i| keep(i as usize)),
        None => {
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                if keep(i) {
                    out.push(i as u32);
                }
            }
            *sel = Some(out);
        }
    }
}

/// Union of two ascending index lists, ascending and deduplicated.
fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(next);
    }
    out
}

fn eval_binary<R: RowAccess>(op: BinOp, left: &RExpr, right: &RExpr, row: &R) -> Datum {
    match op {
        BinOp::And => {
            // Short-circuit on definite false.
            let l = left.eval(row);
            if matches!(l, Datum::Bool(false)) {
                return Datum::Bool(false);
            }
            let r = right.eval(row);
            match (as_bool3(&l), as_bool3(&r)) {
                (Some(a), Some(b)) => Datum::Bool(a && b),
                (Some(false), _) | (_, Some(false)) => Datum::Bool(false),
                _ => Datum::Null,
            }
        }
        BinOp::Or => {
            let l = left.eval(row);
            if matches!(l, Datum::Bool(true)) {
                return Datum::Bool(true);
            }
            let r = right.eval(row);
            match (as_bool3(&l), as_bool3(&r)) {
                (Some(a), Some(b)) => Datum::Bool(a || b),
                (Some(true), _) | (_, Some(true)) => Datum::Bool(true),
                _ => Datum::Null,
            }
        }
        BinOp::Eq => cmp_to_bool(left, right, row, |o| o == Ordering::Equal),
        BinOp::NotEq => cmp_to_bool(left, right, row, |o| o != Ordering::Equal),
        BinOp::Lt => cmp_to_bool(left, right, row, |o| o == Ordering::Less),
        BinOp::Le => cmp_to_bool(left, right, row, |o| o != Ordering::Greater),
        BinOp::Gt => cmp_to_bool(left, right, row, |o| o == Ordering::Greater),
        BinOp::Ge => cmp_to_bool(left, right, row, |o| o != Ordering::Less),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            arith(op, &left.eval(row), &right.eval(row))
        }
    }
}

fn cmp_to_bool<R: RowAccess>(
    left: &RExpr,
    right: &RExpr,
    row: &R,
    pred: impl Fn(Ordering) -> bool,
) -> Datum {
    let l = left.eval(row);
    let r = right.eval(row);
    match l.sql_cmp(&r) {
        Some(o) => Datum::Bool(pred(o)),
        None => Datum::Null,
    }
}

fn compare_bool(a: &Datum, b: &Datum, pred: impl Fn(Ordering) -> bool) -> Option<bool> {
    a.sql_cmp(b).map(pred)
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn negate3(v: Option<bool>, negated: bool) -> Datum {
    match v {
        Some(b) => Datum::Bool(b != negated),
        None => Datum::Null,
    }
}

fn as_bool3(d: &Datum) -> Option<bool> {
    match d {
        Datum::Bool(b) => Some(*b),
        _ => None,
    }
}

/// SQL arithmetic: Int⊕Int stays Int (wrapping; division truncates, by-zero
/// yields NULL), any Float operand promotes to Float, NULL propagates.
fn arith(op: BinOp, l: &Datum, r: &Datum) -> Datum {
    match (l, r) {
        (Datum::Int(a), Datum::Int(b)) => {
            let (a, b) = (*a, *b);
            match op {
                BinOp::Add => Datum::Int(a.wrapping_add(b)),
                BinOp::Sub => Datum::Int(a.wrapping_sub(b)),
                BinOp::Mul => Datum::Int(a.wrapping_mul(b)),
                BinOp::Div => {
                    if b == 0 {
                        Datum::Null
                    } else {
                        Datum::Int(a.wrapping_div(b))
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Datum::Null
                    } else {
                        Datum::Int(a.wrapping_rem(b))
                    }
                }
                _ => Datum::Null,
            }
        }
        _ => match (l.as_float(), r.as_float()) {
            (Some(a), Some(b)) => {
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return Datum::Null;
                        }
                        a / b
                    }
                    BinOp::Mod => {
                        if b == 0.0 {
                            return Datum::Null;
                        }
                        a % b
                    }
                    _ => return Datum::Null,
                };
                Datum::Float(v)
            }
            _ => Datum::Null,
        },
    }
}

/// Precompiled LIKE pattern with `%` (any run) and `_` (any one char).
#[derive(Debug, Clone, PartialEq)]
pub struct LikePattern {
    tokens: Vec<LikeToken>,
    /// Fast path: pattern is `prefix%` with no other wildcards.
    prefix_only: Option<String>,
    source: String,
}

#[derive(Debug, Clone, PartialEq)]
enum LikeToken {
    Literal(String),
    AnyRun,
    AnyOne,
}

impl LikePattern {
    /// Compile a LIKE pattern.
    pub fn compile(pattern: &str) -> Self {
        let mut tokens = Vec::new();
        let mut lit = String::new();
        for ch in pattern.chars() {
            match ch {
                '%' => {
                    if !lit.is_empty() {
                        tokens.push(LikeToken::Literal(std::mem::take(&mut lit)));
                    }
                    if tokens.last() != Some(&LikeToken::AnyRun) {
                        tokens.push(LikeToken::AnyRun);
                    }
                }
                '_' => {
                    if !lit.is_empty() {
                        tokens.push(LikeToken::Literal(std::mem::take(&mut lit)));
                    }
                    tokens.push(LikeToken::AnyOne);
                }
                c => lit.push(c),
            }
        }
        if !lit.is_empty() {
            tokens.push(LikeToken::Literal(lit));
        }
        let prefix_only = match tokens.as_slice() {
            [LikeToken::Literal(p), LikeToken::AnyRun] => Some(p.clone()),
            _ => None,
        };
        LikePattern {
            tokens,
            prefix_only,
            source: pattern.to_string(),
        }
    }

    /// Pattern text as written.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Prefix when the pattern is a pure `prefix%` (selectivity estimation).
    pub fn as_prefix(&self) -> Option<&str> {
        self.prefix_only.as_deref()
    }

    /// Match `s` against the pattern.
    pub fn matches(&self, s: &str) -> bool {
        if let Some(p) = &self.prefix_only {
            return s.starts_with(p.as_str());
        }
        match_tokens(&self.tokens, s)
    }
}

fn match_tokens(tokens: &[LikeToken], s: &str) -> bool {
    match tokens.first() {
        None => s.is_empty(),
        Some(LikeToken::Literal(lit)) => s
            .strip_prefix(lit.as_str())
            .is_some_and(|rest| match_tokens(&tokens[1..], rest)),
        Some(LikeToken::AnyOne) => {
            let mut chars = s.chars();
            match chars.next() {
                Some(_) => match_tokens(&tokens[1..], chars.as_str()),
                None => false,
            }
        }
        Some(LikeToken::AnyRun) => {
            if tokens.len() == 1 {
                return true;
            }
            // Try every suffix (including the empty one).
            let mut rest = s;
            loop {
                if match_tokens(&tokens[1..], rest) {
                    return true;
                }
                let mut chars = rest.chars();
                if chars.next().is_none() {
                    return false;
                }
                rest = chars.as_str();
            }
        }
    }
}

/// Resolve an AST expression against a name → position lookup.
///
/// `resolve` returns the column position for a name, or `None` for unknown
/// names (reported as planning errors). Aggregates are rejected here — the
/// planner lowers them before resolution.
pub fn resolve_expr(expr: &Expr, resolve: &impl Fn(&str) -> Option<usize>) -> EngineResult<RExpr> {
    Ok(match expr {
        Expr::Column(name) => RExpr::Col(
            resolve(name)
                .ok_or_else(|| EngineError::Planning(format!("unknown column {name:?}")))?,
        ),
        Expr::Literal(l) => RExpr::Const(literal_to_datum(l)),
        Expr::Binary { op, left, right } => RExpr::Binary {
            op: *op,
            left: Box::new(resolve_expr(left, resolve)?),
            right: Box::new(resolve_expr(right, resolve)?),
        },
        Expr::Neg(e) => RExpr::Neg(Box::new(resolve_expr(e, resolve)?)),
        Expr::Not(e) => RExpr::Not(Box::new(resolve_expr(e, resolve)?)),
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => RExpr::Between {
            expr: Box::new(resolve_expr(expr, resolve)?),
            lo: Box::new(resolve_expr(lo, resolve)?),
            hi: Box::new(resolve_expr(hi, resolve)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => RExpr::InList {
            expr: Box::new(resolve_expr(expr, resolve)?),
            list: list
                .iter()
                .map(|e| resolve_expr(e, resolve))
                .collect::<EngineResult<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => RExpr::Like {
            expr: Box::new(resolve_expr(expr, resolve)?),
            pattern: LikePattern::compile(pattern),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => RExpr::IsNull {
            expr: Box::new(resolve_expr(expr, resolve)?),
            negated: *negated,
        },
        Expr::Agg { func, .. } => {
            return Err(EngineError::Planning(format!(
                "aggregate {} not allowed in this context",
                agg_name(*func)
            )))
        }
    })
}

fn agg_name(f: AggFunc) -> &'static str {
    f.name()
}

/// Convert an AST literal to a datum.
pub fn literal_to_datum(l: &Literal) -> Datum {
    match l {
        Literal::Int(v) => Datum::Int(*v),
        Literal::Float(v) => Datum::Float(*v),
        Literal::Str(s) => Datum::Str(s.clone().into_boxed_str()),
        Literal::Bool(b) => Datum::Bool(*b),
        Literal::Null => Datum::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SliceRow;

    fn row(vals: &[Datum]) -> Vec<Datum> {
        vals.to_vec()
    }

    fn eval(e: &RExpr, vals: &[Datum]) -> Datum {
        e.eval(&SliceRow(vals))
    }

    #[test]
    fn comparisons_and_3vl() {
        let e = RExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(RExpr::Col(0)),
            right: Box::new(RExpr::Const(Datum::Int(5))),
        };
        assert_eq!(eval(&e, &row(&[Datum::Int(7)])), Datum::Bool(true));
        assert_eq!(eval(&e, &row(&[Datum::Int(3)])), Datum::Bool(false));
        assert_eq!(eval(&e, &row(&[Datum::Null])), Datum::Null);
    }

    #[test]
    fn and_or_short_circuit_with_null() {
        let null_gt = RExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(RExpr::Const(Datum::Null)),
            right: Box::new(RExpr::Const(Datum::Int(0))),
        };
        let t = RExpr::Const(Datum::Bool(true));
        let f = RExpr::Const(Datum::Bool(false));
        let and_nf = RExpr::Binary {
            op: BinOp::And,
            left: Box::new(null_gt.clone()),
            right: Box::new(f),
        };
        assert_eq!(
            eval(&and_nf, &[]),
            Datum::Bool(false),
            "NULL AND FALSE = FALSE"
        );
        let or_nt = RExpr::Binary {
            op: BinOp::Or,
            left: Box::new(null_gt.clone()),
            right: Box::new(t),
        };
        assert_eq!(eval(&or_nt, &[]), Datum::Bool(true), "NULL OR TRUE = TRUE");
        let not_n = RExpr::Not(Box::new(null_gt));
        assert_eq!(eval(&not_n, &[]), Datum::Null, "NOT NULL = NULL");
    }

    #[test]
    fn between_inclusive() {
        let e = RExpr::Between {
            expr: Box::new(RExpr::Col(0)),
            lo: Box::new(RExpr::Const(Datum::Int(1))),
            hi: Box::new(RExpr::Const(Datum::Int(3))),
            negated: false,
        };
        assert_eq!(eval(&e, &row(&[Datum::Int(1)])), Datum::Bool(true));
        assert_eq!(eval(&e, &row(&[Datum::Int(3)])), Datum::Bool(true));
        assert_eq!(eval(&e, &row(&[Datum::Int(4)])), Datum::Bool(false));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let e = RExpr::InList {
            expr: Box::new(RExpr::Col(0)),
            list: vec![RExpr::Const(Datum::Int(1)), RExpr::Const(Datum::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &row(&[Datum::Int(1)])), Datum::Bool(true));
        // 2 IN (1, NULL) is UNKNOWN, not FALSE.
        assert_eq!(eval(&e, &row(&[Datum::Int(2)])), Datum::Null);
    }

    #[test]
    fn arithmetic_int_float_rules() {
        let add = |l: Datum, r: Datum| arith(BinOp::Add, &l, &r);
        assert_eq!(add(Datum::Int(2), Datum::Int(3)), Datum::Int(5));
        assert_eq!(add(Datum::Int(2), Datum::Float(0.5)), Datum::Float(2.5));
        assert_eq!(
            arith(BinOp::Div, &Datum::Int(7), &Datum::Int(2)),
            Datum::Int(3)
        );
        assert_eq!(
            arith(BinOp::Div, &Datum::Int(7), &Datum::Int(0)),
            Datum::Null
        );
        assert_eq!(
            arith(BinOp::Mod, &Datum::Int(7), &Datum::Int(4)),
            Datum::Int(3)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(LikePattern::compile("ab%").matches("abcdef"));
        assert!(!LikePattern::compile("ab%").matches("axb"));
        assert!(LikePattern::compile("%cd%").matches("abcdef"));
        assert!(LikePattern::compile("a_c").matches("abc"));
        assert!(!LikePattern::compile("a_c").matches("abbc"));
        assert!(LikePattern::compile("%").matches(""));
        assert!(LikePattern::compile("a%c%e").matches("abcde"));
        assert!(!LikePattern::compile("a%c%e").matches("abde"));
        assert_eq!(LikePattern::compile("pre%").as_prefix(), Some("pre"));
        assert_eq!(LikePattern::compile("p%e").as_prefix(), None);
    }

    #[test]
    fn eval_filter_discards_unknown() {
        let e = RExpr::Const(Datum::Null);
        assert!(!e.eval_filter(&SliceRow(&[])));
        let t = RExpr::Const(Datum::Bool(true));
        assert!(t.eval_filter(&SliceRow(&[])));
    }

    #[test]
    fn resolve_maps_names() {
        use nodb_sqlparse::parse_select;
        let stmt = parse_select("SELECT a FROM t WHERE a + b > 2").unwrap();
        let filter = stmt.filter.unwrap();
        let r = resolve_expr(&filter, &|n| match n {
            "a" => Some(0),
            "b" => Some(1),
            _ => None,
        })
        .unwrap();
        let mut cols = Vec::new();
        r.columns(&mut cols);
        assert_eq!(cols, vec![0, 1]);
        assert!(resolve_expr(&filter, &|_| None).is_err());
    }

    #[test]
    fn columnar_filter_matches_rowwise_eval() {
        use nodb_rawcsv::ColumnType;
        // Deterministic mini-fuzz: typed int/float/str columns with nulls,
        // predicates over every kernel shape (+ unsupported ones forcing the
        // fallback), compared row for row against eval_filter.
        let mut state = 0x5eedu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for case in 0..80 {
            let rows = (next() % 60) as usize;
            let mut ints = TypedColumn::new(ColumnType::Int);
            let mut floats = TypedColumn::new(ColumnType::Float);
            let mut strs = TypedColumn::new(ColumnType::Str);
            for _ in 0..rows {
                match next() % 5 {
                    0 => ints.push(&Datum::Null),
                    _ => ints.push(&Datum::Int((next() % 20) as i64 - 10)),
                }
                match next() % 6 {
                    0 => floats.push(&Datum::Null),
                    _ => floats.push(&Datum::Float((next() % 40) as f64 / 4.0 - 5.0)),
                }
                match next() % 5 {
                    0 => strs.push(&Datum::Null),
                    _ => strs.push(&Datum::Str(format!("s{}", next() % 8).into_boxed_str())),
                }
            }
            let views = [
                ColView::Typed {
                    col: &ints,
                    base: 0,
                },
                ColView::Typed {
                    col: &floats,
                    base: 0,
                },
                ColView::Typed {
                    col: &strs,
                    base: 0,
                },
            ];
            let cmp = |op: BinOp, c: usize, k: Datum| RExpr::Binary {
                op,
                left: Box::new(RExpr::Col(c)),
                right: Box::new(RExpr::Const(k)),
            };
            let k = (next() % 20) as i64 - 10;
            let preds = [
                cmp(BinOp::Lt, 0, Datum::Int(k)),
                cmp(BinOp::Ge, 0, Datum::Float(k as f64 + 0.5)),
                cmp(BinOp::Eq, 1, Datum::Int(k)),
                cmp(BinOp::NotEq, 0, Datum::Int(k)),
                cmp(BinOp::Eq, 0, Datum::Str("oops".into())), // type mismatch
                cmp(BinOp::Eq, 2, Datum::from("s3")),
                // Constant on the left flips the comparison.
                RExpr::Binary {
                    op: BinOp::Gt,
                    left: Box::new(RExpr::Const(Datum::Int(k))),
                    right: Box::new(RExpr::Col(0)),
                },
                RExpr::Between {
                    expr: Box::new(RExpr::Col(0)),
                    lo: Box::new(RExpr::Const(Datum::Int(-3))),
                    hi: Box::new(RExpr::Const(Datum::Int(5))),
                    negated: case % 2 == 0,
                },
                RExpr::InList {
                    expr: Box::new(RExpr::Col(0)),
                    list: vec![
                        RExpr::Const(Datum::Int(1)),
                        RExpr::Const(Datum::Null),
                        RExpr::Const(Datum::Int(k)),
                    ],
                    negated: case % 2 == 1,
                },
                RExpr::Like {
                    expr: Box::new(RExpr::Col(2)),
                    pattern: LikePattern::compile("s%"),
                    negated: case % 2 == 0,
                },
                RExpr::Like {
                    expr: Box::new(RExpr::Col(0)),
                    pattern: LikePattern::compile("s%"),
                    negated: false,
                },
                RExpr::IsNull {
                    expr: Box::new(RExpr::Col(1)),
                    negated: case % 2 == 1,
                },
                // AND chain (refinement), OR of kernels (union), and an
                // arithmetic comparison that has no kernel (fallback).
                RExpr::Binary {
                    op: BinOp::And,
                    left: Box::new(cmp(BinOp::Ge, 0, Datum::Int(-5))),
                    right: Box::new(cmp(BinOp::Le, 1, Datum::Float(2.5))),
                },
                RExpr::Binary {
                    op: BinOp::Or,
                    left: Box::new(cmp(BinOp::Lt, 0, Datum::Int(-7))),
                    right: Box::new(cmp(BinOp::Gt, 1, Datum::Float(3.0))),
                },
                RExpr::Binary {
                    op: BinOp::Or,
                    left: Box::new(RExpr::Binary {
                        op: BinOp::And,
                        left: Box::new(cmp(BinOp::Gt, 0, Datum::Int(0))),
                        right: Box::new(cmp(BinOp::Lt, 0, Datum::Int(4))),
                    }),
                    right: Box::new(RExpr::IsNull {
                        expr: Box::new(RExpr::Col(0)),
                        negated: false,
                    }),
                },
                RExpr::Binary {
                    op: BinOp::Gt,
                    left: Box::new(RExpr::Binary {
                        op: BinOp::Add,
                        left: Box::new(RExpr::Col(0)),
                        right: Box::new(RExpr::Col(1)),
                    }),
                    right: Box::new(RExpr::Const(Datum::Int(0))),
                },
            ];
            for (pi, pred) in preds.iter().enumerate() {
                let fast = pred.filter_columnar(&views, rows);
                let slow: Vec<u32> = (0..rows)
                    .filter(|&i| {
                        pred.eval_filter(&ViewRow {
                            cols: &views,
                            row: i,
                        })
                    })
                    .map(|i| i as u32)
                    .collect();
                assert_eq!(fast, slow, "case {case} pred {pi}");
            }
        }
    }

    #[test]
    fn map_columns_translates_space() {
        let e = RExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(RExpr::Col(10)),
            right: Box::new(RExpr::Col(20)),
        };
        let m = e.map_columns(&|c| c / 10 - 1);
        let mut cols = Vec::new();
        m.columns(&mut cols);
        assert_eq!(cols, vec![0, 1]);
    }
}
