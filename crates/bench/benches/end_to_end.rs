//! End-to-end query benchmarks: cold vs adapted PostgresRaw, Baseline, and
//! a loaded row store, all answering the same SP query — the Criterion twin
//! of the FIG3/SEQ experiments.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nodb_bench::systems::{Contestant, LoadedContestant, RawContestant};
use nodb_bench::workload::{scratch_dir, sp_query, Dataset};
use nodb_core::NoDbConfig;
use nodb_storage::DbProfile;

fn bench_end_to_end(c: &mut Criterion) {
    let dir = scratch_dir("bench_e2e");
    let data = Dataset::standard(&dir, 10, 20_000, 0xE2E);
    let schema = data.schema();
    let sql = sp_query("t", &[2, 7], 4, 0.3);

    let mut group = c.benchmark_group("end_to_end_20k_rows");
    group.sample_size(20);

    group.bench_function("postgresraw_cold", |b| {
        b.iter_batched(
            || {
                let mut s = RawContestant::pm_c();
                s.init(&data.path, &schema).unwrap();
                s
            },
            |mut s| black_box(s.run(&sql).unwrap().0),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("postgresraw_adapted", |b| {
        let mut s = RawContestant::pm_c();
        s.init(&data.path, &schema).unwrap();
        s.run(&sql).unwrap(); // warm
        b.iter(|| black_box(s.run(&sql).unwrap().0))
    });

    group.bench_function("baseline_external_files", |b| {
        let mut s = RawContestant::new(NoDbConfig::baseline());
        s.init(&data.path, &schema).unwrap();
        b.iter(|| black_box(s.run(&sql).unwrap().0))
    });

    group.bench_function("loaded_row_store_query_only", |b| {
        let mut s = LoadedContestant::new(DbProfile::PostgresLike, vec![]);
        s.init(&data.path, &schema).unwrap(); // load excluded from timing
        b.iter(|| black_box(s.run(&sql).unwrap().0))
    });

    group.finish();
    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
