//! lint:cancellable — nodb-server: the TCP serving layer over a shared
//! [`NoDb`] registry. Every accept/dispatch loop in this crate polls its
//! shutdown flag (or the query's `QueryCtx`), so the server always winds
//! down cooperatively.
//!
//! # Architecture
//!
//! ```text
//!  client ──frame──▶ accept loop ──▶ connection thread ──▶ NoDb::query_reported
//!                        │                  │                    │
//!                   shutdown flag      disconnect          ScanBudget::acquire
//!                                      watchdog ──▶ CancelToken  (global permits)
//! ```
//!
//! [`Server::start`] installs two serving-layer features on the shared
//! `NoDb` through its admin surface:
//!
//! * a global [`ScanBudget`] of `scan_budget` permits with a bounded
//!   admission queue — N concurrent connections share one scan-thread
//!   pool instead of each fanning out `scan_threads` workers, and
//!   arrivals past the queue bound are bounced with `ERR overloaded`
//!   *before* touching any table state;
//! * a [prepared-statement cache](nodb_core::PreparedCache) so repeat SQL
//!   strings skip parse+plan (`prepared=1` in the response status line).
//!
//! Each `QUERY` mints a [`QueryCtx`] (server-configured deadline) and
//! spawns a *disconnect watchdog* that `peek`s the client socket while the
//! query runs: a client hang-up trips the query's [`CancelToken`], the
//! cooperative machinery from PR 6 unwinds the scan (merging completed
//! partials first), and the table stays fully usable for everyone else.
//!
//! Wire protocol and command table: `crates/server/README.md`.

pub mod client;
pub mod protocol;

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nodb_core::{CancelToken, EngineError, NoDb, QueryCtx, ScanBudget};
use parking_lot::Mutex;

use protocol::{read_frame_shutdown_aware, write_frame, Command, READ_POLL};

pub use client::NoDbClient;

/// How often the accept loop wakes to poll the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How often the disconnect watchdog peeks the client socket.
const WATCHDOG_POLL: Duration = Duration::from_millis(20);

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Global scan-thread budget shared by every concurrent query.
    pub scan_budget: usize,
    /// Bounded admission queue: queries allowed to wait for permits at
    /// once; arrivals past this are rejected with `ERR overloaded`.
    pub admission_queue: usize,
    /// Prepared-statement cache capacity (distinct SQL strings); `0`
    /// disables the cache.
    pub prepared_statements: usize,
    /// Per-query deadline in milliseconds (`0` = none).
    pub query_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scan_budget: 8,
            admission_queue: 64,
            prepared_statements: 64,
            query_timeout_ms: 0,
        }
    }
}

/// Lifetime counters of one server (all monotonic except `active_connections`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Connections accepted so far.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Queries answered with `OK`.
    pub queries_ok: u64,
    /// Queries answered with `ERR` (including overload rejections).
    pub queries_err: u64,
    /// Queries cancelled because their client disconnected mid-flight.
    pub disconnect_cancels: u64,
}

#[derive(Debug, Default)]
struct ServerStats {
    connections: AtomicU64,
    active_connections: AtomicU64,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    disconnect_cancels: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            disconnect_cancels: self.disconnect_cancels.load(Ordering::Relaxed),
        }
    }
}

/// A running nodb-server: accept loop + one thread per connection.
pub struct Server {
    db: Arc<NoDb>,
    budget: Arc<ScanBudget>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind, install the admission budget + prepared-statement cache on
    /// `db`, and start serving in background threads. Returns once the
    /// listener is bound (queries can be sent immediately).
    pub fn start(db: Arc<NoDb>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept so the loop can poll the shutdown flag.
        listener.set_nonblocking(true)?;

        let budget = Arc::new(ScanBudget::with_queue(
            config.scan_budget,
            config.admission_queue,
        ));
        db.admin().install_scan_budget(Arc::clone(&budget));
        if config.prepared_statements > 0 {
            db.admin()
                .enable_prepared_statements(config.prepared_statements);
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_thread = {
            let db = Arc::clone(&db);
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let connections = Arc::clone(&connections);
            let timeout_ms = config.query_timeout_ms;
            std::thread::spawn(move || {
                // Accept/dispatch loop: polls `shutdown` every iteration
                // (the lint:cancellable promise for this crate).
                loop {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stats.connections.fetch_add(1, Ordering::Relaxed);
                            stats.active_connections.fetch_add(1, Ordering::Relaxed);
                            let db = Arc::clone(&db);
                            let shutdown = Arc::clone(&shutdown);
                            let stats2 = Arc::clone(&stats);
                            let handle = std::thread::spawn(move || {
                                let _ =
                                    handle_connection(stream, &db, &stats2, &shutdown, timeout_ms);
                                stats2.active_connections.fetch_sub(1, Ordering::Relaxed);
                            });
                            connections.lock().push(handle);
                        }
                        Err(e) if protocol::is_timeout(&e) => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => {
                            // Transient accept failure (e.g. aborted
                            // handshake): keep serving.
                            std::thread::sleep(ACCEPT_POLL);
                        }
                    }
                }
            })
        };

        Ok(Server {
            db,
            budget,
            addr,
            shutdown,
            stats,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (resolves the ephemeral port of `127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared database this server fronts.
    pub fn db(&self) -> &Arc<NoDb> {
        &self.db
    }

    /// The admission budget installed at start (telemetry for tests and
    /// operators).
    pub fn budget(&self) -> &Arc<ScanBudget> {
        &self.budget
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Signal shutdown and join the accept loop and every connection
    /// thread. Connections finish their in-flight request, then see the
    /// flag and exit.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for h in handles {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped-without-shutdown server still stops
        // accepting and lets detached connection threads drain.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one connection until EOF, `QUIT`, or server shutdown.
fn handle_connection(
    mut stream: TcpStream,
    db: &Arc<NoDb>,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
    timeout_ms: u64,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_POLL))?;
    // This connection's most recent query report (REPORT command) — kept
    // per-connection so concurrent clients never see each other's reports.
    let mut last_report: Option<nodb_core::QueryReport> = None;
    // Dispatch loop: `read_frame_shutdown_aware` polls the shutdown flag
    // between read timeouts, so an idle connection notices shutdown within
    // one READ_POLL tick.
    // Runs until client EOF or server shutdown (a `None` frame).
    while let Some(line) = read_frame_shutdown_aware(&mut stream, shutdown)? {
        let command = match Command::parse(&line) {
            Ok(c) => c,
            Err(msg) => {
                respond(&mut stream, &format!("ERR {msg}"), "")?;
                continue;
            }
        };
        match command {
            Command::Ping => respond(&mut stream, "OK", "pong")?,
            Command::Quit => {
                respond(&mut stream, "OK", "bye")?;
                break;
            }
            Command::Tables => {
                let names = db.table_names().join("\n");
                respond(&mut stream, "OK", &names)?;
            }
            Command::Schema(table) => match db.schema(&table) {
                Some(schema) => respond(&mut stream, "OK", &schema.to_string())?,
                None => respond(&mut stream, &format!("ERR unknown table {table:?}"), "")?,
            },
            Command::Panel(table) => match db.snapshot(&table) {
                Some(snap) => respond(&mut stream, "OK", &snap.panel())?,
                None => respond(&mut stream, &format!("ERR unknown table {table:?}"), "")?,
            },
            Command::Report => match &last_report {
                Some(rep) => {
                    let body = format!("{}\nplan: {}", rep.breakdown.panel_row(), rep.plan);
                    respond(&mut stream, "OK", &body)?;
                }
                None => respond(&mut stream, "ERR no query on this connection yet", "")?,
            },
            Command::Stats => {
                let s = stats.snapshot();
                let mut body = format!(
                    "connections={}\nactive_connections={}\nqueries_ok={}\nqueries_err={}\ndisconnect_cancels={}",
                    s.connections,
                    s.active_connections,
                    s.queries_ok,
                    s.queries_err,
                    s.disconnect_cancels
                );
                if let Some(t) = db.admin().budget_telemetry() {
                    body.push_str(&format!(
                        "\nbudget_capacity={}\nbudget_in_flight={}\nbudget_waiting={}\nbudget_peak_in_flight={}\nbudget_peak_waiting={}\nbudget_admitted={}\nbudget_rejected={}",
                        t.capacity,
                        t.in_flight,
                        t.waiting,
                        t.peak_in_flight,
                        t.peak_waiting,
                        t.admitted,
                        t.rejected
                    ));
                }
                if let Some(p) = db.admin().prepared_stats() {
                    body.push_str(&format!(
                        "\nprepared_hits={}\nprepared_misses={}\nprepared_evictions={}\nprepared_invalidations={}",
                        p.hits, p.misses, p.evictions, p.invalidations
                    ));
                }
                respond(&mut stream, "OK", &body)?;
            }
            Command::Snapshot => {
                let results = db.admin().snapshot_now();
                let mut failed = 0usize;
                let body = results
                    .iter()
                    .map(|(table, r)| match r {
                        Ok(()) => format!("{table}=ok"),
                        Err(msg) => {
                            failed += 1;
                            format!("{table}=err {msg}")
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                let status = if failed == 0 {
                    "OK".to_string()
                } else {
                    format!("ERR {failed} snapshot save(s) failed")
                };
                respond(&mut stream, &status, &body)?;
            }
            Command::SnapshotStats => {
                let t = db.admin().snapshot_stats();
                let body = format!(
                    "saves={}\nsave_failures={}\nrestores={}\nrestores_rejected={}",
                    t.saves, t.save_failures, t.restores, t.restores_rejected
                );
                respond(&mut stream, "OK", &body)?;
            }
            Command::EpochStats => {
                let (source_changes, rows) = db.admin().epoch_report();
                let mut body = format!("source_changes={source_changes}");
                for (name, generation, epoch) in rows {
                    body.push_str(&format!(
                        "\ntable={name} generation={generation} len={} trusted_len={} torn_tail={}",
                        epoch.meta.len,
                        epoch.trusted_len,
                        u8::from(epoch.trusted_len < epoch.meta.len),
                    ));
                }
                respond(&mut stream, "OK", &body)?;
            }
            Command::Query(sql) => {
                let outcome = run_query(&mut stream, db, stats, timeout_ms, &sql);
                match outcome {
                    Ok(report) => {
                        last_report = report;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(())
}

/// Execute one `QUERY` with a disconnect watchdog, write the two response
/// frames, and hand back the query's report (None on error responses).
fn run_query(
    stream: &mut TcpStream,
    db: &Arc<NoDb>,
    stats: &Arc<ServerStats>,
    timeout_ms: u64,
    sql: &str,
) -> io::Result<Option<nodb_core::QueryReport>> {
    let ctx = QueryCtx::from_timeout_ms(timeout_ms);
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = spawn_watchdog(stream, ctx.cancel_token(), Arc::clone(&done));
    let t0 = Instant::now();
    let result = db.query_reported(sql, &ctx);
    done.store(true, Ordering::Relaxed);
    let disconnected = match watchdog {
        Some(handle) => handle.join().unwrap_or(false),
        None => false,
    };
    if disconnected {
        stats.disconnect_cancels.fetch_add(1, Ordering::Relaxed);
    }
    match result {
        Ok((result, report)) => {
            stats.queries_ok.fetch_add(1, Ordering::Relaxed);
            let status = format!(
                "OK rows={} prepared={} cached={} source_changed={} ms={:.3}",
                result.len(),
                u8::from(report.prepared_hit),
                u8::from(report.fully_cached),
                report.source_changed,
                t0.elapsed().as_secs_f64() * 1e3
            );
            respond(stream, &status, &result.to_string())?;
            Ok(Some(report))
        }
        Err(e) => {
            stats.queries_err.fetch_add(1, Ordering::Relaxed);
            let status = match &e {
                EngineError::Overloaded { .. } => format!("ERR overloaded: {e}"),
                _ => format!("ERR {e}"),
            };
            // A disconnected client cannot receive the error frame; ignore
            // the write failure and let the dispatch loop observe EOF.
            let _ = respond(stream, &status, "");
            Ok(None)
        }
    }
}

/// Watch the client socket while a query runs; on EOF (client hang-up),
/// trip the query's cancel token. Returns a handle resolving to `true`
/// when a disconnect was seen. `None` when the stream could not be cloned
/// (the query then runs unwatched — worst case it finishes normally).
fn spawn_watchdog(
    stream: &TcpStream,
    token: CancelToken,
    done: Arc<AtomicBool>,
) -> Option<JoinHandle<bool>> {
    let peek = stream.try_clone().ok()?;
    peek.set_read_timeout(Some(WATCHDOG_POLL)).ok()?;
    Some(std::thread::spawn(move || {
        let mut probe = [0u8; 1];
        // Watchdog loop: exits when the query finishes (`done`, checked
        // every tick) or the client hangs up (peek sees EOF → cancel).
        loop {
            if done.load(Ordering::Relaxed) {
                return false;
            }
            match peek.peek(&mut probe) {
                Ok(0) => {
                    // EOF: the client is gone. Cancel the in-flight query;
                    // the scan unwinds cooperatively and merges completed
                    // partials (PR 6 semantics).
                    token.cancel();
                    return true;
                }
                Ok(_) => {
                    // The client pipelined its next request; nothing to do
                    // until the current query finishes.
                    std::thread::sleep(WATCHDOG_POLL);
                }
                Err(e) if protocol::is_timeout(&e) => {}
                Err(_) => {
                    // Connection reset counts as a disconnect too.
                    token.cancel();
                    return true;
                }
            }
        }
    }))
}

/// Write the canonical two-frame response: status line, then body.
fn respond(stream: &mut impl Write, status: &str, body: &str) -> io::Result<()> {
    write_frame(stream, status)?;
    write_frame(stream, body)
}
