//! Storage error type.

use std::fmt;

/// Errors from the conventional storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// I/O failure with context.
    Io {
        /// Operation description.
        context: String,
        /// OS error.
        source: std::io::Error,
    },
    /// A tuple exceeds what a single page can hold.
    TupleTooLarge {
        /// Encoded tuple size.
        size: usize,
        /// Page size in force.
        page_size: usize,
    },
    /// Raw CSV error during load.
    Csv(nodb_rawcsv::RawCsvError),
    /// Unknown table.
    UnknownTable(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "I/O during {context}: {source}"),
            StorageError::TupleTooLarge { size, page_size } => {
                write!(f, "tuple of {size} bytes exceeds page size {page_size}")
            }
            StorageError::Csv(e) => write!(f, "load error: {e}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl StorageError {
    /// Wrap an I/O error.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }
}

impl From<nodb_rawcsv::RawCsvError> for StorageError {
    fn from(e: nodb_rawcsv::RawCsvError) -> Self {
        StorageError::Csv(e)
    }
}

impl From<StorageError> for nodb_engine::EngineError {
    fn from(e: StorageError) -> Self {
        nodb_engine::EngineError::Execution(e.to_string())
    }
}

/// Result alias.
pub type StorageResult<T> = Result<T, StorageError>;
