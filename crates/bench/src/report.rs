//! Text tables for experiment output (the demo panels, printable).

use std::fmt::Write as _;

/// A simple aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{h:<w$}", w = widths[i]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}", w = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
