//! Interactive NoDB shell — the closest thing to the paper's live demo.
//!
//! ```text
//! cargo run --release --example repl -- path/to/file.csv   # local, in-process
//! cargo run --release --example repl                       # local, synthetic 100k rows
//! cargo run --release --example repl -- --connect 127.0.0.1:7654
//! ```
//!
//! The third form turns the shell into a thin network client for a running
//! `nodb-server` (see `crates/server`): SQL and the `\…` commands travel
//! over the length-prefixed wire protocol instead of poking the facade.
//!
//! Commands (both modes):
//! * any `SELECT ... FROM t ...` — run it and print result + status;
//! * `\panel [t]` — the Fig 2 monitoring panel;
//! * `\plan`      — EXPLAIN/breakdown of the last query;
//! * `\cache N` / `\map N` — set budgets to N bytes (local mode only);
//! * `\stats`     — server counters (network mode only);
//! * `\q`         — quit.

use std::io::{BufRead, Write};

use nodb_repro::prelude::*;
use nodb_server::NoDbClient;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--connect") {
        match args.get(1) {
            Some(addr) => network_repl(addr),
            None => eprintln!("usage: repl --connect HOST:PORT"),
        }
        return;
    }
    local_repl(args.into_iter().next());
}

/// Thin client mode: every command becomes a wire request.
fn network_repl(addr: &str) {
    let mut client = match NoDbClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            eprintln!("start one with: cargo run -p nodb-server -- --table t=file.csv");
            return;
        }
    };
    println!("connected to nodb-server at {addr}");
    println!("type SQL, \\panel <t>, \\plan, \\tables, \\stats, or \\q\n");
    let stdin = std::io::stdin();
    loop {
        print!("nodb> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        let request = match line {
            "" => continue,
            "\\q" | "\\quit" | "exit" => break,
            "\\plan" => "REPORT".to_string(),
            "\\tables" => "TABLES".to_string(),
            "\\stats" => "STATS".to_string(),
            _ if line.starts_with("\\panel") => {
                let table = line.strip_prefix("\\panel").map(str::trim).unwrap_or("");
                if table.is_empty() {
                    println!("usage: \\panel <table>");
                    continue;
                }
                format!("PANEL {table}")
            }
            _ if line.starts_with("\\cache") || line.starts_with("\\map") => {
                println!("budget sliders are local-mode only (the server owns its budgets)");
                continue;
            }
            sql => format!("QUERY {sql}"),
        };
        match client.command(&request) {
            Ok(resp) => {
                println!("{}", resp.status);
                if !resp.body.is_empty() {
                    println!("{}", resp.body);
                }
                println!();
            }
            Err(e) => {
                eprintln!("connection error: {e}");
                break;
            }
        }
    }
    let _ = client.quit();
    println!("bye");
}

/// In-process mode: drive the client + admin API surfaces directly.
fn local_repl(arg: Option<String>) {
    let mut db = NoDb::new(NoDbConfig::builder().build());
    let _scratch;
    match arg {
        Some(path) => {
            db.register_csv("t", &path).expect("register file");
            println!("registered {path} as table t (schema inferred):");
        }
        None => {
            let dir = std::env::temp_dir().join(format!("nodb_repl_{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("scratch");
            let csv = dir.join("demo.csv");
            GeneratorConfig::uniform_ints(10, 100_000, 1)
                .generate_file(&csv)
                .expect("generate");
            db.register_csv("t", &csv).expect("register");
            println!(
                "no file given — generated {} (100k rows) as table t:",
                csv.display()
            );
            _scratch = dir;
        }
    }
    println!("  {}", db.schema("t").unwrap());
    println!("type SQL, \\panel, \\plan, \\cache N, \\map N, or \\q\n");

    let stdin = std::io::stdin();
    loop {
        print!("nodb> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "\\quit" | "exit" => break,
            "\\panel" => match db.snapshot("t") {
                Some(s) => println!("{}", s.panel()),
                None => println!("no table registered"),
            },
            "\\plan" => match db.admin().last_report() {
                Some(r) => println!("{}", r.plan),
                None => println!("no query has run yet"),
            },
            _ if line.starts_with("\\cache ") || line.starts_with("\\map ") => {
                let mut parts = line.split_whitespace();
                let which = parts.next().unwrap_or("");
                match parts.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(bytes) if which == "\\cache" => {
                        db.admin().set_cache_budget(bytes);
                        println!("cache budget = {bytes} bytes");
                    }
                    Some(bytes) => {
                        db.admin().set_map_budget(bytes);
                        println!("map budget = {bytes} bytes");
                    }
                    None => println!("usage: {which} <bytes>"),
                }
            }
            sql => match db.query(sql) {
                Ok(r) => {
                    println!("{r}");
                    if let Some(rep) = db.admin().last_report() {
                        println!(
                            "time {:?}  fully_cached={}  prepared_hit={}  [{}]\n",
                            rep.total,
                            rep.fully_cached,
                            rep.prepared_hit,
                            rep.breakdown.panel_row()
                        );
                    }
                }
                Err(e) => println!("error: {e}\n"),
            },
        }
    }
    println!("bye");
}
