//! Text tables for experiment output (the demo panels, printable), plus the
//! machine-readable `BENCH_*.json` records future PRs use to track the
//! performance trajectory.

use std::fmt::Write as _;
use std::path::Path;

/// One benchmark measurement destined for a `BENCH_*.json` trajectory file.
///
/// `scan_threads` is a first-class column so the parallel-scan scaling
/// curve (1..N threads over the same dataset) is directly comparable across
/// PRs; `clients` is the number of concurrent query issuers (1 for
/// single-client microbenchmarks, >1 for the shared-registry multi-client
/// curve in `BENCH_concurrent_queries.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `cold_scan`.
    pub name: String,
    /// `NoDbConfig::scan_threads` the measurement ran with (resolved, not 0).
    pub scan_threads: usize,
    /// Concurrent query clients issuing against one shared instance.
    pub clients: usize,
    /// Data rows in the benchmark's input file.
    pub rows: u64,
    /// Mean wall-clock per iteration, milliseconds.
    pub mean_ms: f64,
    /// Fastest iteration, milliseconds.
    pub min_ms: f64,
}

impl BenchRecord {
    /// Build a single-client record from raw per-iteration durations.
    pub fn from_samples(
        name: impl Into<String>,
        scan_threads: usize,
        rows: u64,
        samples: &[std::time::Duration],
    ) -> Self {
        Self::from_samples_clients(name, scan_threads, 1, rows, samples)
    }

    /// Build a record with an explicit concurrent-client count.
    pub fn from_samples_clients(
        name: impl Into<String>,
        scan_threads: usize,
        clients: usize,
        rows: u64,
        samples: &[std::time::Duration],
    ) -> Self {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        let mean = if ms.is_empty() {
            0.0
        } else {
            ms.iter().sum::<f64>() / ms.len() as f64
        };
        let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
        BenchRecord {
            name: name.into(),
            scan_threads,
            clients,
            rows,
            mean_ms: mean,
            min_ms: if min.is_finite() { min } else { 0.0 },
        }
    }
}

/// Render records as the `BENCH_*.json` document (hand-rolled JSON: the
/// environment has no serde, and the schema is five flat fields).
pub fn bench_records_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {:?}, \"scan_threads\": {}, \"clients\": {}, \"rows\": {}, \
             \"mean_ms\": {:.3}, \"min_ms\": {:.3}}}",
            r.name, r.scan_threads, r.clients, r.rows, r.mean_ms, r.min_ms
        );
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write records to `path` as JSON.
pub fn write_bench_json(path: impl AsRef<Path>, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, bench_records_json(records))
}

/// A simple aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{h:<w$}", w = widths[i]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:<w$}", w = widths[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Format a duration in milliseconds with two decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn bench_records_render_as_json() {
        use std::time::Duration;
        let records = vec![
            BenchRecord::from_samples(
                "cold_scan",
                1,
                1_000_000,
                &[Duration::from_millis(100), Duration::from_millis(200)],
            ),
            BenchRecord::from_samples("cold_scan", 4, 1_000_000, &[Duration::from_millis(50)]),
        ];
        assert!((records[0].mean_ms - 150.0).abs() < 1e-9);
        assert!((records[0].min_ms - 100.0).abs() < 1e-9);
        let json = bench_records_json(&records);
        assert!(json.contains("\"scan_threads\": 1"));
        assert!(json.contains("\"scan_threads\": 4"));
        assert!(json.contains("\"clients\": 1"));
        assert!(json.contains("\"mean_ms\": 150.000"));
        assert!(json.contains("\"rows\": 1000000"));
        assert!(json.trim_end().ends_with('}'));

        let multi = BenchRecord::from_samples_clients(
            "warm_shared",
            4,
            8,
            10_000,
            &[Duration::from_millis(9)],
        );
        assert_eq!(multi.clients, 8);
        assert!(bench_records_json(&[multi]).contains("\"clients\": 8"));
    }

    #[test]
    fn bench_json_round_trips_to_disk() {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_bench_json_{}", std::process::id()));
        let records = vec![BenchRecord::from_samples(
            "x",
            2,
            10,
            &[std::time::Duration::from_millis(5)],
        )];
        write_bench_json(&p, &records).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, bench_records_json(&records));
        std::fs::remove_file(p).unwrap();
    }
}
