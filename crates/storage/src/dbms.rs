//! The conventional load-then-query DBMS facade — the race contestants.
//!
//! Three profiles model the paper's comparators (§4.3) as *real storage
//! engines*, not cost multipliers:
//!
//! * [`DbProfile::PostgresLike`] — 8 KiB slotted-page row store, optional
//!   secondary B-tree indexes, ANALYZE-style statistics at load.
//! * [`DbProfile::MySqlLike`] — 16 KiB pages and a clustered B-tree on the
//!   first attribute built during load (InnoDB-style), making its load the
//!   slowest of the row stores.
//! * [`DbProfile::DbmsXLike`] — a column store: the most expensive load
//!   (one segment per column) and the fastest analytical queries.
//!
//! All profiles share `nodb-engine` above the scan, mirroring the paper's
//! setup where only data access differs.

use std::collections::HashMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nodb_engine::{execute, plan_select, EngineError, EngineResult, QueryResult, ScanSource};
use nodb_rawcsv::reader::BlockScanner;
use nodb_rawcsv::tokenizer::{TokenizerConfig, Tokens};
use nodb_rawcsv::{parser, Datum, Schema};
use nodb_sqlparse::parse_select;
use nodb_stats::table::StatsEstimator;
use nodb_stats::{PredicateSketch, TableStats};

use crate::colstore::ColumnStore;
use crate::error::StorageResult;
use crate::heap::HeapFile;
use crate::index::BTreeIndex;
use crate::scan::{row_id, ColScanSource, HeapScanSource, IndexScanSource};
use crate::tuple::encode_row;

/// Which conventional system to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbProfile {
    /// 8 KiB row store + optional secondary indexes.
    PostgresLike,
    /// 16 KiB row store + clustered index on attribute 0 built at load.
    MySqlLike,
    /// Column store (per-column segments).
    DbmsXLike,
}

impl DbProfile {
    /// Display name used by the race harness.
    pub fn name(self) -> &'static str {
        match self {
            DbProfile::PostgresLike => "PostgreSQL-like",
            DbProfile::MySqlLike => "MySQL-like",
            DbProfile::DbmsXLike => "DBMS-X-like",
        }
    }

    fn page_size(self) -> usize {
        match self {
            DbProfile::PostgresLike => 8192,
            DbProfile::MySqlLike => 16384,
            DbProfile::DbmsXLike => 8192, // unused (column store)
        }
    }
}

/// What happened during a load (the race's initialization phase).
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Wall-clock time for parse + write.
    pub load_time: Duration,
    /// Wall-clock time for index builds.
    pub index_time: Duration,
    /// Binary bytes written to storage.
    pub bytes_written: u64,
    /// Rows loaded.
    pub rows: u64,
}

impl LoadReport {
    /// Total initialization time.
    pub fn total_time(&self) -> Duration {
        self.load_time + self.index_time
    }
}

enum TableStorage {
    Heap(Arc<HeapFile>),
    Col(Arc<ColumnStore>),
}

struct LoadedTable {
    schema: Schema,
    storage: TableStorage,
    indexes: HashMap<usize, BTreeIndex>,
    stats: TableStats,
}

/// A conventional DBMS instance: load first, query after.
pub struct ConventionalDb {
    profile: DbProfile,
    dir: PathBuf,
    pool_pages: usize,
    tables: HashMap<String, LoadedTable>,
}

impl ConventionalDb {
    /// New instance storing binary data under `dir`.
    pub fn new(profile: DbProfile, dir: impl AsRef<Path>) -> Self {
        ConventionalDb {
            profile,
            dir: dir.as_ref().to_path_buf(),
            pool_pages: 1024,
            tables: HashMap::new(),
        }
    }

    /// Profile in force.
    pub fn profile(&self) -> DbProfile {
        self.profile
    }

    /// Load a CSV file into table `name`, building the profile's storage
    /// plus B-tree indexes on `index_attrs` (the "contestant tuning" of
    /// §4.3). Statistics are collected during the load pass (ANALYZE).
    pub fn load_csv(
        &mut self,
        name: &str,
        csv_path: impl AsRef<Path>,
        schema: Schema,
        has_header: bool,
        index_attrs: &[usize],
    ) -> StorageResult<LoadReport> {
        let start = Instant::now();
        let tokenizer = TokenizerConfig::default();
        let mut scanner = BlockScanner::open_default(&csv_path)?;
        let mut tokens = Tokens::new();
        let nattrs = schema.len();
        let mut stats = TableStats::new(1);

        // Effective index set per profile: MySQL-like always clusters on 0.
        let mut index_set: Vec<usize> = index_attrs.to_vec();
        if self.profile == DbProfile::MySqlLike && !index_set.contains(&0) {
            index_set.push(0);
        }
        index_set.sort_unstable();
        index_set.dedup();

        let mut indexes: HashMap<usize, BTreeIndex> =
            index_set.iter().map(|&a| (a, BTreeIndex::new())).collect();
        let mut index_time = Duration::ZERO;

        let mut row_buf: Vec<Datum> = Vec::with_capacity(nattrs);
        let mut enc_buf: Vec<u8> = Vec::new();
        let mut rows = 0u64;

        enum W {
            Heap(crate::heap::HeapWriter, u64 /*page_size*/),
            Col(crate::colstore::ColumnStoreWriter),
        }
        let mut writer = match self.profile {
            DbProfile::DbmsXLike => W::Col(ColumnStore::create(
                self.dir.join(format!("{name}.cols")),
                nattrs,
            )?),
            p => W::Heap(
                HeapFile::create(
                    self.dir.join(format!("{name}.heap")),
                    p.page_size(),
                    self.pool_pages,
                )?,
                p.page_size() as u64,
            ),
        };

        let mut skipped_header = !has_header;
        while let Some(line) = scanner.next_line()? {
            if !skipped_header {
                skipped_header = true;
                continue;
            }
            // Conventional load: the FULL tuple is tokenized, parsed and
            // converted — this is exactly the up-front cost NoDB avoids.
            tokenizer.tokenize_into(line.bytes, &mut tokens);
            row_buf.clear();
            for attr in 0..nattrs {
                let d = match tokens.get(attr) {
                    Some(span) => {
                        parser::parse_field(span.of(line.bytes), schema.ty(attr), rows, attr)?
                    }
                    None => Datum::Null,
                };
                stats.attr_mut(attr).observe(&d);
                row_buf.push(d);
            }
            // Index maintenance (timed separately).
            if !indexes.is_empty() {
                let t = Instant::now();
                let rid = match &writer {
                    W::Heap(_, _) => {
                        // Row id assigned after append; compute below. Use a
                        // placeholder path: heap row ids are (page, slot),
                        // which we can only know post-append, so index after.
                        u64::MAX
                    }
                    W::Col(_) => rows,
                };
                if rid != u64::MAX {
                    for (&attr, ix) in indexes.iter_mut() {
                        ix.insert(&row_buf[attr], rid);
                    }
                }
                index_time += t.elapsed();
            }
            match &mut writer {
                W::Heap(w, _) => {
                    enc_buf.clear();
                    encode_row(&row_buf, &mut enc_buf);
                    w.append(&enc_buf)?;
                }
                W::Col(w) => w.append(&row_buf)?,
            }
            rows += 1;
        }
        stats.set_row_count(rows);

        let (storage, bytes_written) = match writer {
            W::Heap(w, page_size) => {
                let (heap, bytes) = w.finish()?;
                let heap = Arc::new(heap);
                // Build heap indexes in a second pass now that (page, slot)
                // row ids exist — like CREATE INDEX after COPY.
                if !indexes.is_empty() {
                    let t = Instant::now();
                    build_heap_indexes(&heap, nattrs, &mut indexes, page_size as usize)?;
                    index_time += t.elapsed();
                }
                (TableStorage::Heap(heap), bytes)
            }
            W::Col(w) => {
                let (store, bytes) = w.finish()?;
                (TableStorage::Col(Arc::new(store)), bytes)
            }
        };

        let load_time = start.elapsed() - index_time;
        self.tables.insert(
            name.to_string(),
            LoadedTable {
                schema,
                storage,
                indexes,
                stats,
            },
        );
        Ok(LoadReport {
            load_time,
            index_time,
            bytes_written,
            rows,
        })
    }

    /// Execute a SQL query over loaded tables.
    pub fn query(&mut self, sql: &str) -> EngineResult<QueryResult> {
        let stmt = parse_select(sql)?;
        let table = self
            .tables
            .get_mut(&stmt.table)
            .ok_or_else(|| EngineError::UnknownTable(stmt.table.clone()))?;

        let planned = {
            let est = StatsEstimator::new(&mut table.stats);
            plan_select(&stmt, &table.schema, &est)?
        };

        let nattrs = table.schema.len();
        let source: Box<dyn ScanSource> = match &table.storage {
            TableStorage::Heap(heap) => match pick_index_rows(table, &planned) {
                Some(ids) => Box::new(IndexScanSource::new(
                    Arc::clone(heap),
                    nattrs,
                    planned.scan.clone(),
                    ids,
                )),
                None => Box::new(HeapScanSource::new(
                    Arc::clone(heap),
                    nattrs,
                    planned.scan.clone(),
                )),
            },
            TableStorage::Col(store) => Box::new(ColScanSource::new(store, planned.scan.clone())?),
        };
        execute(&planned, source)
    }

    /// Schema of a loaded table.
    pub fn schema(&self, table: &str) -> Option<&Schema> {
        self.tables.get(table).map(|t| &t.schema)
    }
}

/// Second-pass index build over a finished heap.
fn build_heap_indexes(
    heap: &Arc<HeapFile>,
    nattrs: usize,
    indexes: &mut HashMap<usize, BTreeIndex>,
    _page_size: usize,
) -> StorageResult<()> {
    let attrs: Vec<usize> = {
        let mut a: Vec<usize> = indexes.keys().copied().collect();
        a.sort_unstable();
        a
    };
    let mut vals: Vec<Datum> = Vec::new();
    for pg in 0..heap.npages() {
        let tuples: Vec<Vec<u8>> =
            heap.with_page(pg, |p| p.tuples().map(|t| t.to_vec()).collect())?;
        for (slot, t) in tuples.iter().enumerate() {
            vals.clear();
            let mut r = crate::tuple::TupleReader::new(t);
            r.project(&attrs, nattrs, &mut vals);
            for (i, &attr) in attrs.iter().enumerate() {
                if let Some(ix) = indexes.get_mut(&attr) {
                    ix.insert(&vals[i], row_id(pg, slot));
                }
            }
        }
    }
    Ok(())
}

/// If the pushed predicate has a conjunct over an indexed attribute, return
/// the candidate row ids from the most selective such index.
fn pick_index_rows(table: &LoadedTable, planned: &nodb_engine::PlannedQuery) -> Option<Vec<u64>> {
    let pred = planned.scan.predicate.as_ref()?;
    let mut conjuncts = Vec::new();
    nodb_engine::sketch::split_conjuncts(pred, &mut conjuncts);
    let mut best: Option<Vec<u64>> = None;
    for c in &conjuncts {
        let Some((pos, sketch)) = nodb_engine::sketch::sketch_conjunct(c) else {
            continue;
        };
        let attr = planned.scan.attrs[pos];
        let Some(ix) = table.indexes.get(&attr) else {
            continue;
        };
        let ids = match &sketch {
            PredicateSketch::Eq(v) => ix.lookup_eq(v),
            PredicateSketch::Lt(v) => ix.lookup_range(Bound::Unbounded, Bound::Excluded(v)),
            PredicateSketch::Le(v) => ix.lookup_range(Bound::Unbounded, Bound::Included(v)),
            PredicateSketch::Gt(v) => ix.lookup_range(Bound::Excluded(v), Bound::Unbounded),
            PredicateSketch::Ge(v) => ix.lookup_range(Bound::Included(v), Bound::Unbounded),
            PredicateSketch::Between(lo, hi) => {
                ix.lookup_range(Bound::Included(lo), Bound::Included(hi))
            }
            _ => continue,
        };
        if best.as_ref().map(|b| ids.len() < b.len()).unwrap_or(true) {
            best = Some(ids);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_rawcsv::GeneratorConfig;

    fn setup(profile: DbProfile, index_attrs: &[usize]) -> (ConventionalDb, LoadReport, PathBuf) {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "nodb_dbms_{:?}_{}_{}",
            profile,
            index_attrs.len(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("data.csv");
        let cfg = GeneratorConfig::uniform_ints(5, 2000, 7);
        cfg.generate_file(&csv).unwrap();
        let mut db = ConventionalDb::new(profile, &dir);
        let report = db
            .load_csv("t", &csv, cfg.schema(), false, index_attrs)
            .unwrap();
        (db, report, dir)
    }

    #[test]
    fn postgres_like_loads_and_queries() {
        let (mut db, report, dir) = setup(DbProfile::PostgresLike, &[]);
        assert_eq!(report.rows, 2000);
        assert!(report.bytes_written > 0);
        let r = db.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Datum::Int(2000)));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn column_store_answers_projections() {
        let (mut db, _, dir) = setup(DbProfile::DbmsXLike, &[]);
        let r = db.query("SELECT c0, c4 FROM t LIMIT 5").unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.columns, vec!["c0", "c4"]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn filtered_query_matches_across_profiles() {
        let (mut pg, _, d1) = setup(DbProfile::PostgresLike, &[]);
        let (mut my, _, d2) = setup(DbProfile::MySqlLike, &[]);
        let (mut dx, _, d3) = setup(DbProfile::DbmsXLike, &[]);
        let sql = "SELECT COUNT(*), SUM(c2) FROM t WHERE c1 < 500000000";
        let a = pg.query(sql).unwrap();
        let b = my.query(sql).unwrap();
        let c = dx.query(sql).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        for d in [d1, d2, d3] {
            std::fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn index_scan_agrees_with_heap_scan() {
        let (mut indexed, report, d1) = setup(DbProfile::PostgresLike, &[1]);
        let (mut plain, _, d2) = setup(DbProfile::PostgresLike, &[]);
        assert!(report.index_time > Duration::ZERO);
        let sql = "SELECT c0, c1 FROM t WHERE c1 BETWEEN 100000000 AND 200000000 ORDER BY c0";
        let a = indexed.query(sql).unwrap();
        let b = plain.query(sql).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        std::fs::remove_dir_all(d1).unwrap();
        std::fs::remove_dir_all(d2).unwrap();
    }

    #[test]
    fn mysql_like_builds_clustered_index() {
        let (mut db, report, dir) = setup(DbProfile::MySqlLike, &[]);
        assert!(report.index_time > Duration::ZERO, "clustered index build");
        let r = db.query("SELECT c0 FROM t WHERE c0 = 0").unwrap();
        // Equality on the clustered key goes through the index path.
        let _ = r;
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unknown_table_errors() {
        let (mut db, _, dir) = setup(DbProfile::PostgresLike, &[]);
        assert!(matches!(
            db.query("SELECT a FROM nope"),
            Err(EngineError::UnknownTable(_))
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
