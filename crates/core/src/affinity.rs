//! Best-effort CPU core pinning for scan workers.
//!
//! With `NoDbConfig::pin_cores` on, every parallel-scan worker (and
//! pre-count counter) pins itself to one core — worker `w` to core
//! `w % available cores` — so the OS scheduler stops migrating workers
//! mid-scan and per-core caches stay warm over a partition's blocks. The
//! call goes straight to Linux's `sched_setaffinity` (libc is already
//! linked by std; no new dependency) and is *best-effort* throughout: on
//! non-Linux targets, in containers with restricted affinity masks, or on
//! any other failure it silently does nothing — pinning is a performance
//! hint, never a correctness requirement.

/// Pin the calling thread to core `core % available_parallelism`. Returns
/// whether the kernel accepted the mask (callers ignore it; tests don't).
#[cfg(target_os = "linux")]
pub(crate) fn pin_current_thread(core: usize) -> bool {
    // A cpu_set_t is 1024 bits on Linux; build the single-core mask by
    // hand rather than pulling in libc for one call.
    const SET_BITS: usize = 1024;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let core = core % cores.min(SET_BITS);
    let mut mask = [0u64; SET_BITS / 64];
    mask[core / 64] |= 1u64 << (core % 64);
    extern "C" {
        /// `int sched_setaffinity(pid_t pid, size_t cpusetsize, const cpu_set_t *mask)`;
        /// pid 0 = the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask is a valid, live 128-byte buffer and pid 0 refers to
    // the calling thread; the call only reads the mask.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// No-op on non-Linux targets.
#[cfg(not(target_os = "linux"))]
pub(crate) fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort() {
        // Pin a scratch thread, not the test harness thread (the affinity
        // would stick for the rest of the process).
        let accepted = std::thread::spawn(|| pin_current_thread(0)).join().unwrap();
        if cfg!(target_os = "linux") {
            // Best-effort means we tolerate refusal (restricted cpusets),
            // but the common case should succeed.
            let _ = accepted;
        } else {
            assert!(!accepted, "non-Linux targets must no-op");
        }
    }

    #[test]
    fn out_of_range_cores_wrap() {
        let accepted = std::thread::spawn(|| pin_current_thread(usize::MAX))
            .join()
            .unwrap();
        let _ = accepted; // must not panic or error out
    }
}
