//! The `no-unwrap` ratchet: a checked-in per-file budget of
//! `unwrap()/expect()/panic!` sites in library code that may only go down.
//!
//! New code must not add panicking sites (count above budget fails the
//! lint), and removing sites must be banked (count below budget also fails,
//! with instructions to lower the entry) — so the numbers in
//! `lint-ratchet.toml` decrease monotonically over the repo's history and a
//! regression can never hide inside an inflated old budget.
//!
//! The file is a small TOML subset written and parsed by hand (the
//! workspace builds offline, no `toml` crate):
//!
//! ```toml
//! # comment
//! [no-unwrap]
//! "crates/core/src/lib.rs" = 42
//! ```

use std::collections::BTreeMap;

use crate::rules::{Finding, RuleId};

/// Parsed ratchet: workspace-relative path (forward slashes) → allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Ratchet {
    pub no_unwrap: BTreeMap<String, usize>,
}

/// Parse `lint-ratchet.toml` text. Unknown sections are ignored (forward
/// compatibility); malformed entries are an error — a typo silently
/// admitting unlimited unwraps would defeat the ratchet.
pub fn parse(text: &str) -> Result<Ratchet, String> {
    let mut r = Ratchet::default();
    let mut in_no_unwrap = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_no_unwrap = section.trim() == "no-unwrap";
            continue;
        }
        if !in_no_unwrap {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("ratchet line {}: expected `\"path\" = N`", i + 1))?;
        let key = key.trim();
        let path = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("ratchet line {}: path must be quoted", i + 1))?;
        let count: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("ratchet line {}: count must be an integer", i + 1))?;
        r.no_unwrap.insert(path.to_string(), count);
    }
    Ok(r)
}

/// Serialize a ratchet (sorted, stable — diffs stay one line per change).
pub fn render(r: &Ratchet) -> String {
    let mut out = String::from(
        "# nodb-lint ratchet: allowed unwrap()/expect()/panic! sites per file\n\
         # (library code only — #[cfg(test)] blocks are not counted).\n\
         # Counts may only decrease: lower an entry when you remove sites,\n\
         # never raise one. Regenerate with `cargo run -p nodb-lint -- \\\n\
         # --workspace --write-ratchet` after removing panicking call sites.\n\
         \n[no-unwrap]\n",
    );
    for (path, count) in &r.no_unwrap {
        out.push_str(&format!("\"{path}\" = {count}\n"));
    }
    out
}

/// Compare measured per-file counts against the ratchet. Both directions
/// fail: above budget means new panicking sites; below budget means the
/// entry is stale and must be lowered so the improvement is locked in.
pub fn check(counts: &BTreeMap<String, usize>, ratchet: &Ratchet) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, &actual) in counts {
        let allowed = ratchet.no_unwrap.get(path).copied().unwrap_or(0);
        if actual > allowed {
            out.push(Finding {
                rule: RuleId::NoUnwrap,
                path: path.clone(),
                line: 0,
                message: format!(
                    "{actual} unwrap()/expect()/panic! sites in library code, ratchet \
                     allows {allowed}; remove the new sites (the ratchet only goes down)"
                ),
            });
        } else if actual < allowed {
            out.push(Finding {
                rule: RuleId::NoUnwrap,
                path: path.clone(),
                line: 0,
                message: format!(
                    "ratchet entry is stale: {allowed} allowed but only {actual} remain; \
                     lower it (or run `--write-ratchet`) to bank the improvement"
                ),
            });
        }
    }
    // Entries for files that no longer exist (or dropped to zero sites and
    // out of `counts`) are stale budget someone could hide regressions in.
    for (path, &allowed) in &ratchet.no_unwrap {
        if !counts.contains_key(path) && allowed > 0 {
            out.push(Finding {
                rule: RuleId::NoUnwrap,
                path: path.clone(),
                line: 0,
                message: format!(
                    "ratchet entry is stale: {allowed} allowed but the file has no sites \
                     (or was removed); delete the entry or run `--write-ratchet`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(p, n)| (p.to_string(), *n)).collect()
    }

    #[test]
    fn round_trip() {
        let mut r = Ratchet::default();
        r.no_unwrap.insert("crates/a/src/lib.rs".into(), 3);
        r.no_unwrap.insert("src/lib.rs".into(), 1);
        let parsed = parse(&render(&r)).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn increase_rejected_equal_ok_decrease_stale() {
        let r = parse("[no-unwrap]\n\"a.rs\" = 2\n").unwrap();
        assert!(check(&counts(&[("a.rs", 2)]), &r).is_empty());
        let up = check(&counts(&[("a.rs", 3)]), &r);
        assert_eq!(up.len(), 1);
        assert!(up[0].message.contains("ratchet allows 2"));
        let down = check(&counts(&[("a.rs", 1)]), &r);
        assert_eq!(down.len(), 1);
        assert!(down[0].message.contains("stale"));
    }

    #[test]
    fn unknown_file_and_removed_file_both_flagged() {
        let r = parse("[no-unwrap]\n\"gone.rs\" = 4\n").unwrap();
        let f = check(&counts(&[("new.rs", 1)]), &r);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.path == "new.rs"));
        assert!(f.iter().any(|x| x.path == "gone.rs"));
    }

    #[test]
    fn malformed_entries_error() {
        assert!(parse("[no-unwrap]\npath = 1\n").is_err());
        assert!(parse("[no-unwrap]\n\"p.rs\" = many\n").is_err());
        // Unknown sections are skipped wholesale (forward compatibility).
        assert!(parse("[other]\nanything goes\n").is_ok());
    }
}
