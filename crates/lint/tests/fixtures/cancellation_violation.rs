//! lint:cancellable — seeded violations for the `cancellation` rule.
//!
//! The batch loop on line 9 and the while-let scan on line 20 advance
//! through rows without a poll: one finding each. The waived recv loop at
//! the bottom must not fire.

fn drain_batches(src: &mut Source) -> u64 {
    let mut rows = 0;
    loop {
        match src.next_batch() {
            Some(b) => rows += b.len() as u64,
            None => break,
        }
    }
    rows
}

fn scan_lines(scanner: &mut Scanner) -> u64 {
    let mut n = 0;
    while let Some(_line) = scanner.next_line() {
        n += 1;
    }
    n
}

fn drain_queue(rx: &Receiver<u32>) -> u32 {
    let mut sum = 0;
    // lint: cancel-ok fixture: sender hang-up ends this loop
    loop {
        match rx.recv() {
            Ok(v) => sum += v,
            Err(_) => break,
        }
    }
    sum
}
