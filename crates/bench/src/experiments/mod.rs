//! Experiment runners — one per paper artifact (see DESIGN.md's index).
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | `fig2` | Fig 2, system monitoring panel | [`panels::fig2`] |
//! | `fig3` | Fig 3, query execution breakdown | [`panels::fig3`] |
//! | `seq` | §1/§4 response-time improvement over a query sequence | [`adaptive::seq`] |
//! | `adapt` | §4.2 query adaptation across workload epochs | [`adaptive::adapt`] |
//! | `dataset` | §4.2 attribute count / width sensitivity | [`adaptive::dataset`] |
//! | `race` | §4.3 friendly race (data-to-query time) | [`comparison::race`] |
//! | `updates` | §4.2 updates (append / replace) | [`comparison::updates`] |
//! | `knobs` | §1/§4.2 component toggles and budget sweep | [`comparison::knobs`] |

pub mod adaptive;
pub mod comparison;
pub mod panels;

use crate::report::Table;
use crate::workload::Scale;

/// Output of one experiment: tables plus free-form observations.
#[derive(Debug, Default)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `fig3`).
    pub id: String,
    /// What this reproduces.
    pub caption: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Shape observations (the claims EXPERIMENTS.md records).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// New empty report.
    pub fn new(id: &str, caption: &str) -> Self {
        ExperimentReport {
            id: id.into(),
            caption: caption.into(),
            ..Default::default()
        }
    }

    /// Render everything as text.
    pub fn render(&self) -> String {
        let mut s = format!("#### Experiment {} — {}\n\n", self.id, self.caption);
        for t in &self.tables {
            s.push_str(&t.render());
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(&format!("note: {n}\n"));
        }
        s
    }
}

/// All experiment ids, in run order.
pub const ALL: &[&str] = &[
    "fig2", "fig3", "seq", "adapt", "dataset", "race", "updates", "knobs",
];

/// Run one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<ExperimentReport> {
    Some(match id {
        "fig2" => panels::fig2(scale),
        "fig3" => panels::fig3(scale),
        "seq" => adaptive::seq(scale),
        "adapt" => adaptive::adapt(scale),
        "dataset" => adaptive::dataset(scale),
        "race" => comparison::race(scale),
        "updates" => comparison::updates(scale),
        "knobs" => comparison::knobs(scale),
        _ => return None,
    })
}
