//! # nodb-rawcache — the adaptive binary cache (paper §3.2)
//!
//! PostgresRaw "contains a cache that temporarily holds previously accessed
//! data, e.g., a previously accessed attribute or even parts of an
//! attribute". This crate is that cache:
//!
//! * **Binary, typed, columnar** — values are stored post-parse, so a hit
//!   skips tokenizing, parsing *and* conversion; one typed column per
//!   attribute ([`column::TypedColumn`]).
//! * **Populated on the fly** — the scan appends each parsed value as it
//!   goes ("once a disk block of the raw file has been parsed during a scan,
//!   PostgresRaw caches the binary data immediately"); a column may cover
//!   only a prefix of the file ("even parts of an attribute").
//! * **Never forces extra parsing** — only attributes the current query
//!   parses get cached (§3.2: "caching does not force additional data to be
//!   parsed"). The ablation flag for the opposite behaviour lives in
//!   `nodb-core`'s config, not here.
//! * **LRU under a byte budget** — whole-column eviction, with the current
//!   query's columns protected (they are, by definition, most recent).
//! * **Positional-map-compatible layout** — rows are addressed by the same
//!   row ids the positional map uses, so one query plan can mix cache reads
//!   and map-assisted raw reads per attribute ("the cache follows the format
//!   of the positional map").

pub mod cache;
pub mod column;

pub use cache::{CacheMetrics, CachePolicy, RawCache};
pub use column::{ColumnBuilder, TypedColumn};
