//! Abstract syntax tree for the SQL dialect.

use std::fmt;

/// A literal value in the query text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// True for comparison operators producing booleans from comparables.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Column(String),
    /// Literal.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary numeric negation.
    Neg(Box<Expr>),
    /// Boolean NOT.
    Not(Box<Expr>),
    /// `expr [NOT] BETWEEN lo AND hi`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// True for NOT BETWEEN.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List elements.
        list: Vec<Expr>,
        /// True for NOT IN.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern text.
        pattern: String,
        /// True for NOT LIKE.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// Aggregate call; `arg = None` encodes `COUNT(*)`.
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument (None only for COUNT(*)).
        arg: Option<Box<Expr>>,
        /// DISTINCT modifier (e.g. `COUNT(DISTINCT c)`).
        distinct: bool,
    },
}

impl Expr {
    /// Column names referenced anywhere in this expression, in first-seen
    /// order (used for projection pruning and the scan's attribute set).
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) => e.referenced_columns(out),
            Expr::Between { expr, lo, hi, .. } => {
                expr.referenced_columns(out);
                lo.referenced_columns(out);
                hi.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// True when the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub ascending: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM table name.
    pub table: String,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: &str) -> Expr {
        Expr::Column(n.into())
    }

    #[test]
    fn referenced_columns_dedup_in_order() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Binary {
                op: BinOp::Gt,
                left: Box::new(col("b")),
                right: Box::new(Expr::Literal(Literal::Int(1))),
            }),
            right: Box::new(Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(col("a")),
                right: Box::new(col("b")),
            }),
        };
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn contains_aggregate_traverses() {
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::Agg {
                func: AggFunc::Sum,
                arg: Some(Box::new(col("x"))),
                distinct: false,
            }),
            right: Box::new(Expr::Literal(Literal::Int(1))),
        };
        assert!(e.contains_aggregate());
        assert!(!col("x").contains_aggregate());
    }

    #[test]
    fn literal_display_escapes_strings() {
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
    }
}
