//! The operator surface: everything about *running* a NoDb instance that a
//! query handler should not touch.
//!
//! Obtained via [`NoDb::admin`]; borrows the instance, so it is free to
//! mint on every call. Splitting this off the client facade keeps the
//! request-handling surface minimal (register/query/snapshot) while the
//! serving layer and the experiment harness get budgets, update probes,
//! admission control, prepared statements and report retrieval here.

use std::sync::Arc;

use nodb_engine::{EngineError, EngineResult};

use crate::admission::{BudgetTelemetry, ScanBudget};
use crate::api::client::NoDb;
use crate::api::prepared::{PreparedCache, PreparedStats};
use crate::epoch::{EpochChange, SourceEpoch};
use crate::metrics::QueryReport;
use crate::rawscan;

/// Administrative view over a [`NoDb`] (see the module docs).
pub struct Admin<'a> {
    pub(crate) db: &'a NoDb,
}

impl Admin<'_> {
    /// Report for the most recent query on this instance (owned: concurrent
    /// queries each publish their report as they finish, last writer wins).
    pub fn last_report(&self) -> Option<QueryReport> {
        rawscan::lock_recover(&self.db.last_report).clone()
    }

    /// Change the positional-map budget for every registered table (the
    /// demo's interactive storage knob). Shrinking evicts immediately.
    pub fn set_map_budget(&self, bytes: usize) {
        self.db.config.write().map_budget_bytes = bytes;
        self.db
            .tables
            .for_each(|_, h| h.write().map.set_budget(bytes));
    }

    /// Change the cache budget for every registered table.
    pub fn set_cache_budget(&self, bytes: usize) {
        self.db.config.write().cache_budget_bytes = bytes;
        self.db
            .tables
            .for_each(|_, h| h.write().cache.set_budget(bytes));
    }

    /// Force an update probe on one table (the harness uses this to test
    /// §4.2 updates without issuing a query). Reconciles the table exactly
    /// like the pre-query probe: appends keep prefix state, a truncated or
    /// rewritten file quarantines the adaptive structures.
    pub fn probe_updates(&self, table: &str) -> EngineResult<EpochChange> {
        let h = self
            .db
            .tables
            .get(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let change = h.write().check_updates()?;
        Ok(change)
    }

    /// Per-table source-epoch report plus the instance-wide invalidation
    /// count (the server's `EPOCH?` verb): one row per table, sorted by
    /// name, with the epoch the table is currently keyed to and its
    /// file-state generation.
    pub fn epoch_report(&self) -> (u64, Vec<(String, u64, SourceEpoch)>) {
        use std::sync::atomic::Ordering;
        let mut rows = Vec::new();
        self.db.tables.for_each(|name, handle| {
            let t = handle.read();
            rows.push((name.to_string(), t.generation, *t.epoch()));
        });
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        (self.db.source_changes.load(Ordering::Relaxed), rows)
    }

    /// Install a shared scan-thread budget: from now on every query
    /// acquires its scan threads from `budget` before touching any table
    /// lock, and its granted permits cap the scan's worker fan-out. One
    /// budget may govern several `NoDb` instances.
    pub fn install_scan_budget(&self, budget: Arc<ScanBudget>) {
        *self.db.scan_budget.write() = Some(budget);
    }

    /// Remove the scan-thread budget: queries go back to per-query
    /// `scan_threads` fan-out. In-flight grants drain harmlessly.
    pub fn remove_scan_budget(&self) {
        *self.db.scan_budget.write() = None;
    }

    /// The installed scan budget, if any.
    pub fn scan_budget(&self) -> Option<Arc<ScanBudget>> {
        self.db.scan_budget.read().clone()
    }

    /// Telemetry of the installed scan budget, if any.
    pub fn budget_telemetry(&self) -> Option<BudgetTelemetry> {
        self.db.scan_budget.read().as_ref().map(|b| b.telemetry())
    }

    /// Turn on the prepared-statement cache with room for `capacity`
    /// distinct SQL strings; repeat queries then skip parse+plan
    /// (`QueryReport::prepared_hit`). Idempotent: re-enabling replaces the
    /// cache (and its statistics) with a fresh one.
    pub fn enable_prepared_statements(&self, capacity: usize) -> Arc<PreparedCache> {
        let cache = Arc::new(PreparedCache::new(capacity));
        *self.db.prepared.write() = Some(Arc::clone(&cache));
        cache
    }

    /// Turn the prepared-statement cache off (queries plan from scratch
    /// again).
    pub fn disable_prepared_statements(&self) {
        *self.db.prepared.write() = None;
    }

    /// Counters of the prepared-statement cache, if enabled.
    pub fn prepared_stats(&self) -> Option<PreparedStats> {
        self.db.prepared.read().as_ref().map(|c| c.stats())
    }

    /// Persist every registered table's adaptive state to its sidecar
    /// *now* (shutdown hooks, the server's `SNAPSHOT` verb) instead of
    /// waiting for write-behind. Works regardless of the
    /// `snapshot_persistence` knob — an explicit request is its own
    /// authorization. Returns one `(table, result)` row per table; a
    /// failed save reports its error and leaves that table's previous
    /// sidecar (if any) intact, thanks to the atomic-rename protocol.
    pub fn snapshot_now(&self) -> Vec<(String, Result<(), String>)> {
        use std::sync::atomic::Ordering;
        let mut out = Vec::new();
        self.db.tables.for_each(|name, handle| {
            let (path, snap, sig) = {
                let table = handle.read();
                (
                    table.path().to_path_buf(),
                    table.capture_snapshot(),
                    table.snapshot_signature(),
                )
            };
            let result = match nodb_snapshot::save_snapshot(&path, &snap) {
                Ok(_) => {
                    self.db
                        .snapshot_counters
                        .saves
                        .fetch_add(1, Ordering::Relaxed);
                    handle.write().last_snapshot_sig = sig;
                    Ok(())
                }
                Err(e) => {
                    self.db
                        .snapshot_counters
                        .save_failures
                        .fetch_add(1, Ordering::Relaxed);
                    Err(e.to_string())
                }
            };
            out.push((name.to_string(), result));
        });
        out
    }

    /// Counters of the snapshot persistence layer (saves, save failures,
    /// restores, rejected restores).
    pub fn snapshot_stats(&self) -> crate::metrics::SnapshotTelemetry {
        self.db.snapshot_counters.snapshot()
    }
}
