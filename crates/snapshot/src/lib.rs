//! # nodb-snapshot — crash-safe persistence for adaptive state
//!
//! NoDB's positional map, adaptive cache, and on-the-fly statistics are all
//! built as a side effect of queries — which makes them free to build but
//! means every restart starts cold. This crate persists that state to a
//! versioned sidecar file next to the raw data (`foo.csv` →
//! `foo.csv.nodb-snap`) so a restarted engine resumes warm.
//!
//! Design stance: **the sidecar is a hint, never an authority.** The raw
//! CSV file remains the single source of truth for query answers. The
//! loader validates paranoidly — magic, version, per-section checksums,
//! structural invariants, and a file fingerprint (length + mtime + sampled
//! head hash) — and answers *any* irregularity by discarding the snapshot
//! and starting cold. A corrupt or stale sidecar can cost warm-up time; it
//! can never change a query result.
//!
//! * [`format`] — the byte layout, [`format::encode_snapshot`] /
//!   [`format::decode_snapshot`], and the capture/install glue to the
//!   `posmap`, `rawcache`, and `stats` crates;
//! * [`io`] — crash-safe atomic writes (temp + fsync + rename) and reads
//!   routed through the `BlockSource` seam so fault injection and retry
//!   cover the restore path.
//!
//! See `README.md` for the on-disk format specification.

pub mod format;
pub mod io;

pub use format::{
    decode_snapshot, encode_snapshot, ChunkState, PosMapState, SnapshotError, TableSnapshot,
    FORMAT_VERSION, MAGIC,
};
pub use io::{
    load_snapshot, read_sidecar_bytes, save_snapshot, sidecar_path, write_sidecar_atomic,
    SIDECAR_SUFFIX,
};

#[cfg(test)]
mod tests {
    use std::time::{Duration, UNIX_EPOCH};

    use nodb_posmap::{MapPolicy, PositionalMap};
    use nodb_rawcache::{CachePolicy, RawCache};
    use nodb_rawcsv::reader::{fnv1a, RawFileMeta};
    use nodb_rawcsv::{ColumnType, Datum, IoProfile};
    use nodb_stats::TableStats;

    use super::*;

    fn sample_meta() -> RawFileMeta {
        RawFileMeta {
            len: 4096,
            modified: Some(UNIX_EPOCH + Duration::new(1_700_000_000, 123)),
            head_len: 512,
            head_hash: 0xDEAD_BEEF_u64,
        }
    }

    fn sample_snapshot() -> TableSnapshot {
        let mut map = PositionalMap::new(MapPolicy::default());
        map.row_index_mut().note_rows(0, &[0, 40, 81, 130]);
        map.row_index_mut().mark_complete();
        map.line_counts_mut().note(81, 2);
        let mut b = nodb_posmap::ChunkBuilder::new(vec![1, 3]);
        b.push_row_offsets(&[(1, 5)]);
        b.push_row_offsets(&[(1, 7), (3, 12)]);
        map.install(b);

        let mut cache = RawCache::new(CachePolicy::default());
        let mut col = nodb_rawcache::ColumnBuilder::new(ColumnType::Int);
        col.push(&Datum::Int(42));
        col.push(&Datum::Null);
        col.push(&Datum::Int(-7));
        assert!(cache.install_restored(2, col.finish()));
        let mut sc = nodb_rawcache::ColumnBuilder::new(ColumnType::Str);
        sc.push(&Datum::Str("alpha".into()));
        sc.push(&Datum::Str("".into()));
        assert!(cache.install_restored(5, sc.finish()));

        let mut stats = TableStats::new(1);
        for row in 0..50u64 {
            stats.attr_mut(1).observe(&Datum::Int(row as i64 % 9));
            if row % 5 == 0 {
                stats.attr_mut(3).observe(&Datum::Null);
            } else {
                stats.attr_mut(3).observe(&Datum::Float(row as f64 * 0.5));
            }
        }
        stats.advance_observed(1, 50);
        stats.advance_observed(3, 50);
        TableSnapshot::capture(sample_meta(), Some(4), &map, &cache, &stats)
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("round trip");
        assert_eq!(back.meta.len, snap.meta.len);
        assert_eq!(back.meta.modified, snap.meta.modified);
        assert_eq!(back.meta.head_hash, snap.meta.head_hash);
        assert_eq!(back.row_count, Some(4));
        assert_eq!(back.map.row_starts, vec![0, 40, 81, 130]);
        assert!(back.map.complete);
        assert_eq!(back.map.line_counts, vec![(81, 2)]);
        assert_eq!(back.map.chunks.len(), 1);
        assert_eq!(back.map.chunks[0].attrs, vec![1, 3]);
        // Sentinel NO_OFFSET survives the trip raw.
        assert_eq!(back.map.chunks[0].cols[1], vec![nodb_posmap::NO_OFFSET, 12]);
        assert_eq!(back.columns.len(), 2);
        let ints = back
            .columns
            .iter()
            .find(|(a, _)| *a == 2)
            .map(|(_, c)| c)
            .expect("attr 2 restored");
        assert_eq!(ints.datum(0), Some(Datum::Int(42)));
        assert_eq!(ints.datum(1), Some(Datum::Null));
        assert_eq!(ints.datum(2), Some(Datum::Int(-7)));
        let strs = back
            .columns
            .iter()
            .find(|(a, _)| *a == 5)
            .map(|(_, c)| c)
            .expect("attr 5 restored");
        assert_eq!(strs.datum(0), Some(Datum::Str("alpha".into())));
        // Stats state is structurally identical.
        let orig = &snap.stats;
        let got = &back.stats;
        assert_eq!(got.sample_every, orig.sample_every);
        assert_eq!(got.observed, orig.observed);
        assert_eq!(got.attrs.len(), orig.attrs.len());
        for (a, b) in orig.attrs.iter().zip(&got.attrs) {
            assert_eq!(a.attr, b.attr);
            assert_eq!(a.rows_seen, b.rows_seen);
            assert_eq!(a.nulls, b.nulls);
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
            assert_eq!(a.reservoir.rng, b.reservoir.rng);
            assert_eq!(a.reservoir.sample, b.reservoir.sample);
            assert_eq!(a.ndv_words, b.ndv_words);
        }
    }

    #[test]
    fn decode_is_deterministic_and_reencodes_identically() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("decode");
        assert_eq!(encode_snapshot(&back), bytes, "canonical re-encode");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes[0] ^= 0xFF;
        assert_eq!(decode_snapshot(&bytes).err(), Some(SnapshotError::BadMagic));
    }

    #[test]
    fn future_version_rejected_before_anything_else() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_snapshot(&bytes).err(),
            Some(SnapshotError::VersionSkew { found: 99 })
        );
    }

    #[test]
    fn every_truncation_point_fails_closed() {
        let bytes = encode_snapshot(&sample_snapshot());
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                !matches!(err, SnapshotError::Io(_)),
                "cut at {cut} gave an I/O error from pure bytes"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_fails_or_roundtrips_consistently() {
        // Flip each byte: the decoder must either reject the file or (for
        // the handful of bytes whose flip is caught by a checksum anyway)
        // never panic. No flip may produce a snapshot that re-encodes to
        // the corrupted bytes AND differs from the original in validated
        // sections.
        let bytes = encode_snapshot(&sample_snapshot());
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            assert!(
                decode_snapshot(&evil).is_err(),
                "single-bit flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn header_checksum_guards_fingerprint() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        // Byte 16 is the first header payload byte (file_len LSB).
        bytes[16] ^= 0x01;
        assert_eq!(
            decode_snapshot(&bytes).err(),
            Some(SnapshotError::ChecksumMismatch { section: "header" })
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes).err(),
            Some(SnapshotError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn huge_declared_length_never_allocates() {
        // A corrupted length prefix far beyond the file size must be
        // rejected by bounds-checking, not trusted by `with_capacity`.
        let mut bytes = encode_snapshot(&sample_snapshot());
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn posmap_state_installs_into_fresh_map() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("decode");
        let mut map = PositionalMap::new(MapPolicy::default());
        back.map.install_into(&mut map);
        assert!(map.row_index().is_complete());
        assert_eq!(map.row_index().starts(), &[0, 40, 81, 130]);
        assert_eq!(map.chunks().len(), 1);
        assert_eq!(map.chunks()[0].offset(1, 0), Some(5));
        assert_eq!(map.chunks()[0].offset(3, 0), None);
        assert_eq!(map.chunks()[0].offset(3, 1), Some(12));
    }

    #[test]
    fn sidecar_path_appends_suffix() {
        let p = sidecar_path(std::path::Path::new("/data/lineitem.csv"));
        assert_eq!(p, std::path::PathBuf::from("/data/lineitem.csv.nodb-snap"));
    }

    #[test]
    fn save_then_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "nodb-snap-test-{}-{}",
            std::process::id(),
            fnv1a(b"save_then_load")
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let data = dir.join("t.csv");
        std::fs::write(&data, b"a,b\n1,2\n").expect("write data");
        let snap = sample_snapshot();
        let side = save_snapshot(&data, &snap).expect("save");
        assert_eq!(side, sidecar_path(&data));
        let back = load_snapshot(&data, 4096, IoProfile::default())
            .expect("load")
            .expect("present");
        assert_eq!(back.map.row_starts, snap.map.row_starts);
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_sidecar_is_none_not_error() {
        let dir = std::env::temp_dir().join(format!(
            "nodb-snap-test-{}-{}",
            std::process::id(),
            fnv1a(b"missing")
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let data = dir.join("t.csv");
        std::fs::write(&data, b"a\n1\n").expect("write data");
        let loaded = load_snapshot(&data, 4096, IoProfile::default()).expect("load");
        assert!(loaded.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reads_through_fault_injection_and_retry() {
        let dir = std::env::temp_dir().join(format!(
            "nodb-snap-test-{}-{}",
            std::process::id(),
            fnv1a(b"faulty")
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let data = dir.join("t.csv");
        std::fs::write(&data, b"a\n1\n").expect("write data");
        save_snapshot(&data, &sample_snapshot()).expect("save");
        // Aggressive fault plan + retries: the retry layer above the
        // injector must still deliver the full, checksum-clean sidecar.
        let profile = IoProfile {
            retry_attempts: 16,
            retry_backoff_ms: 0,
            faults: Some(nodb_rawcsv::FaultPlan {
                seed: 7,
                one_in: 3,
                latency_us: 0,
            }),
        };
        // Small blocks so many refills happen and faults actually fire.
        let back = load_snapshot(&data, 64, profile)
            .expect("retries recover")
            .expect("present");
        assert_eq!(back.row_count, Some(4));
        std::fs::remove_dir_all(&dir).ok();
    }
}
