//! Block-oriented sequential scanning of raw files, with I/O accounting.
//!
//! The paper observes that in row-ordered CSV, *selective tokenizing does not
//! bring any I/O benefits* — every query that touches uncached attributes
//! still streams the file once. [`BlockScanner`] is that streaming pass:
//! fixed-size block reads, line reassembly across block boundaries, and
//! byte/call counters so the harness can report the *I/O* slice of the
//! paper's Figure 3 execution breakdown.
//!
//! [`RawFileMeta`] is the cheap file fingerprint used by update detection
//! (§4.2 *Updates*): length, modification time, and a hash of the file head,
//! enough to distinguish "appended" from "replaced".

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use crate::error::RawCsvError;
use crate::tokenizer::{count_byte, find_byte, find_byte2, trim_cr, Tokens};
use crate::Result;

/// Default block size for sequential scans (1 MiB).
pub const DEFAULT_BLOCK_SIZE: usize = 1 << 20;

/// Cumulative I/O counters for one scanner (or one query, after
/// [`BlockScanner::take_counters`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoCounters {
    /// Total bytes handed back by the OS.
    pub bytes_read: u64,
    /// Number of `read` calls issued.
    pub read_calls: u64,
}

impl IoCounters {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: IoCounters) {
        self.bytes_read += other.bytes_read;
        self.read_calls += other.read_calls;
    }
}

/// One line of the file as exposed by [`BlockScanner::next_line`].
#[derive(Debug, Clone, Copy)]
pub struct LineRef<'a> {
    /// Zero-based line number (header excluded if skipped by the caller).
    pub line_no: u64,
    /// Byte offset of the first byte of this line in the file.
    pub offset: u64,
    /// Line content without the trailing newline (and without `\r`).
    pub bytes: &'a [u8],
}

/// Streaming line reader over fixed-size blocks.
///
/// Usage:
/// ```no_run
/// # use nodb_rawcsv::reader::BlockScanner;
/// let mut scanner = BlockScanner::open("data.csv", 1 << 20).unwrap();
/// while let Some(line) = scanner.next_line().unwrap() {
///     let _ = (line.line_no, line.offset, line.bytes);
/// }
/// ```
pub struct BlockScanner {
    file: File,
    path: PathBuf,
    block_size: usize,
    /// Soft read cap: reads stop short of this file offset, then degrade to
    /// [`TAIL_READ`]-sized steps for the (usually short) line straddling it.
    /// `u64::MAX` = uncapped. Set by [`RangeScanner`]: a scanner over a
    /// small slice of a large file must not pull a whole block past its
    /// range — with many fine-grained partition slices that amplifies I/O
    /// by `block_size / slice_len`.
    read_cap: u64,
    /// Buffered window of the file. `buf[pos..filled]` is unconsumed.
    buf: Vec<u8>,
    pos: usize,
    filled: usize,
    /// File offset corresponding to `buf[0]`.
    buf_file_offset: u64,
    eof: bool,
    next_line_no: u64,
    counters: IoCounters,
}

/// Read granularity beyond a [`BlockScanner::read_cap`] (one page: enough
/// for the typical tail line in one step without over-reading into the
/// next scanner's slice).
const TAIL_READ: usize = 4096;

impl BlockScanner {
    /// Open `path` for a sequential scan with the given block size.
    pub fn open(path: impl AsRef<Path>, block_size: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
        Ok(BlockScanner {
            file,
            path,
            block_size: block_size.max(4096),
            read_cap: u64::MAX,
            buf: Vec::new(),
            pos: 0,
            filled: 0,
            buf_file_offset: 0,
            eof: false,
            next_line_no: 0,
            counters: IoCounters::default(),
        })
    }

    /// Open with [`DEFAULT_BLOCK_SIZE`].
    pub fn open_default(path: impl AsRef<Path>) -> Result<Self> {
        Self::open(path, DEFAULT_BLOCK_SIZE)
    }

    /// Restart the scan from offset `offset` (used to resume over appended
    /// data without re-reading the prefix). Resets line numbering to
    /// `line_no`.
    pub fn seek_to(&mut self, offset: u64, line_no: u64) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| RawCsvError::io(format!("seek {}", self.path.display()), e))?;
        self.buf.clear();
        self.pos = 0;
        self.filled = 0;
        self.buf_file_offset = offset;
        self.eof = false;
        self.next_line_no = line_no;
        Ok(())
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> IoCounters {
        self.counters
    }

    /// Return and reset the counters.
    pub fn take_counters(&mut self) -> IoCounters {
        std::mem::take(&mut self.counters)
    }

    /// Produce the next line, or `None` at end of file.
    ///
    /// The returned slice borrows the internal buffer and is valid until the
    /// next call.
    pub fn next_line(&mut self) -> Result<Option<LineRef<'_>>> {
        loop {
            // Look for a newline in the unconsumed window.
            if let Some(nl) = find_byte(&self.buf[self.pos..self.filled], b'\n') {
                let start = self.pos;
                let end = start + nl;
                self.pos = end + 1;
                let offset = self.buf_file_offset + start as u64;
                let line_no = self.next_line_no;
                self.next_line_no += 1;
                let bytes = trim_cr(&self.buf[start..end]);
                return Ok(Some(LineRef {
                    line_no,
                    offset,
                    bytes,
                }));
            }
            if self.eof {
                // Final unterminated line, if any.
                if self.pos < self.filled {
                    let start = self.pos;
                    self.pos = self.filled;
                    let offset = self.buf_file_offset + start as u64;
                    let line_no = self.next_line_no;
                    self.next_line_no += 1;
                    let bytes = trim_cr(&self.buf[start..self.filled]);
                    return Ok(Some(LineRef {
                        line_no,
                        offset,
                        bytes,
                    }));
                }
                return Ok(None);
            }
            self.refill()?;
        }
    }

    /// Produce the next line *and* tokenize its leading fields in the same
    /// byte pass (plain, unquoted configurations only).
    ///
    /// The classic loop pays two passes over every tuple prefix: one SWAR
    /// scan locating `\n` (line splitting) and a second locating delimiters
    /// (tokenizing). This fused variant uses [`find_byte2`] to match
    /// *delimiter or newline* per 8-byte word, so each prefix byte is
    /// visited once; once `upto_field` fields are delimited (selective
    /// tokenizing), the remainder of the tuple degrades to a single-needle
    /// newline scan. `out` afterwards holds exactly what
    /// [`crate::tokenizer::TokenizerConfig::tokenize_selective`] would have
    /// produced for the returned line.
    pub fn next_line_tokenized(
        &mut self,
        delimiter: u8,
        upto_field: usize,
        out: &mut Tokens,
    ) -> Result<Option<LineRef<'_>>> {
        out.begin_line();
        // All cursors are relative to the line start (`self.pos`), which
        // does not advance until the line is complete: `refill` compacts the
        // buffer so absolute positions shift, relative ones stay valid.
        let mut rel = 0usize; // scan cursor
        let mut field_start = 0usize; // current field start
        let mut fields_done = false; // located every requested field
        loop {
            let window = &self.buf[self.pos + rel..self.filled];
            let hit = if fields_done {
                find_byte(window, b'\n').map(|p| (p, b'\n'))
            } else {
                find_byte2(window, delimiter, b'\n')
            };
            match hit {
                Some((off, b)) if b == delimiter => {
                    let at = rel + off;
                    out.push_span(field_start as u32, at as u32);
                    if out.len() > upto_field {
                        fields_done = true;
                    }
                    field_start = at + 1;
                    rel = at + 1;
                }
                Some((off, _newline)) => {
                    let at = rel + off;
                    return Ok(Some(self.emit_line(
                        at,
                        true,
                        field_start,
                        fields_done,
                        out,
                    )));
                }
                None => {
                    if self.eof {
                        if self.pos < self.filled {
                            let at = self.filled - self.pos;
                            return Ok(Some(self.emit_line(
                                at,
                                false,
                                field_start,
                                fields_done,
                                out,
                            )));
                        }
                        return Ok(None);
                    }
                    rel = self.filled - self.pos; // resume where the scan stopped
                    self.refill()?;
                }
            }
        }
    }

    /// Finish the fused scan of one line: push the final span, consume the
    /// buffer, and build the [`LineRef`]. `line_len` is relative to the line
    /// start; `terminated` tells whether a `\n` follows.
    fn emit_line(
        &mut self,
        line_len: usize,
        terminated: bool,
        field_start: usize,
        fields_done: bool,
        out: &mut Tokens,
    ) -> LineRef<'_> {
        let start = self.pos;
        let trimmed = trim_cr(&self.buf[start..start + line_len]).len();
        if !fields_done {
            // Final field runs to the (CR-trimmed) end of the line.
            out.push_span(field_start.min(trimmed) as u32, trimmed as u32);
            out.mark_complete();
        }
        self.pos = start + line_len + usize::from(terminated);
        let offset = self.buf_file_offset + start as u64;
        let line_no = self.next_line_no;
        self.next_line_no += 1;
        LineRef {
            line_no,
            offset,
            bytes: &self.buf[start..start + trimmed],
        }
    }

    /// Restrict reads to stop at file offset `cap` and continue in
    /// [`TAIL_READ`]-sized steps beyond it (for the line straddling the
    /// cap). Lines are still produced normally past the cap — this caps
    /// *read-ahead*, not the scan.
    pub fn set_read_cap(&mut self, cap: u64) {
        self.read_cap = cap;
    }

    /// Slide the unconsumed tail to the front of the buffer and read one more
    /// block from the file.
    fn refill(&mut self) -> Result<()> {
        // Compact: move [pos, filled) to the front.
        if self.pos > 0 {
            self.buf.copy_within(self.pos..self.filled, 0);
            self.buf_file_offset += self.pos as u64;
            self.filled -= self.pos;
            self.pos = 0;
        }
        // Block size, clipped to the soft cap (tail steps beyond it).
        let read_at = self.buf_file_offset + self.filled as u64;
        let want = if read_at >= self.read_cap {
            TAIL_READ
        } else {
            (self.block_size as u64)
                .min(self.read_cap - read_at)
                .max(TAIL_READ as u64) as usize
        };
        // Ensure capacity for the read past `filled`.
        if self.buf.len() < self.filled + want {
            self.buf.resize(self.filled + want, 0);
        }
        let n = self
            .file
            .read(&mut self.buf[self.filled..self.filled + want])
            .map_err(|e| RawCsvError::io(format!("read {}", self.path.display()), e))?;
        self.counters.read_calls += 1;
        self.counters.bytes_read += n as u64;
        if n == 0 {
            self.eof = true;
        }
        self.filled += n;
        Ok(())
    }
}

/// One partition of a raw file for the parallel scan: the byte range
/// `[start, end)`, where `start` is the first byte of a line (or 0) and
/// `end` is either the first byte of a later line or the file length.
///
/// Ownership discipline: a scanner over the range owns every line whose
/// *first byte* lies inside it. A line that starts before `end` but runs
/// past it still belongs to this range (its reader scans past `end` to the
/// terminating newline); a line starting exactly at `end` belongs to the
/// next range. Ranges produced by [`partition_line_ranges`] therefore cover
/// every line exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    /// First byte of the range (a line start, or 0).
    pub start: u64,
    /// One past the last byte of the range (a line start, or the file end).
    pub end: u64,
}

/// Split `path` into up to `parts` line-aligned [`LineRange`]s of roughly
/// equal byte size.
///
/// Each candidate split point (`len * k / parts`) is snapped forward to the
/// next line start by probing for the following `\n`. Snapping can collapse
/// neighbouring candidates (very long lines), so the result may hold fewer
/// ranges than requested — but always at least one for a non-empty file, and
/// the ranges concatenate to exactly `[0, len)`.
///
/// Files smaller than `parts` bytes are special-cased: equal-byte targets
/// there collapse so badly that the snap loop used to return fewer
/// partitions than the line count supports, leaving workers idle. For those
/// the whole file is read (it is tiny by definition) and split line-exactly
/// into `min(parts, lines)` ranges.
pub fn partition_line_ranges(path: impl AsRef<Path>, parts: usize) -> Result<Vec<LineRange>> {
    let path = path.as_ref();
    let mut file =
        File::open(path).map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
    let len = file
        .metadata()
        .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?
        .len();
    if len == 0 {
        return Ok(Vec::new());
    }
    if len < parts as u64 {
        return partition_tiny_file(&mut file, path, len, parts);
    }
    let mut cuts: Vec<u64> = vec![0];
    for k in 1..parts {
        let target = (len as u128 * k as u128 / parts as u128) as u64;
        let cut = next_line_start_at_or_after(&mut file, path, target, len)?;
        if cut < len && cut > *cuts.last().expect("non-empty") {
            cuts.push(cut);
        }
    }
    cuts.push(len);
    Ok(cuts
        .windows(2)
        .map(|w| LineRange {
            start: w[0],
            end: w[1],
        })
        .collect())
}

/// Exact split of a file smaller than `parts` bytes: read it whole, list
/// every line start, and deal lines out to exactly `min(parts, lines)`
/// ranges, near-equal in line count.
fn partition_tiny_file(
    file: &mut File,
    path: &Path,
    len: u64,
    parts: usize,
) -> Result<Vec<LineRange>> {
    let mut bytes = Vec::with_capacity(len as usize);
    file.read_to_end(&mut bytes)
        .map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))?;
    let mut starts: Vec<u64> = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            starts.push(i as u64 + 1);
        }
    }
    let lines = starts.len();
    let nparts = parts.min(lines).max(1);
    let mut ranges = Vec::with_capacity(nparts);
    for k in 0..nparts {
        let lo = lines * k / nparts;
        let hi = lines * (k + 1) / nparts;
        let start = starts[lo];
        let end = if hi < lines { starts[hi] } else { len };
        ranges.push(LineRange { start, end });
    }
    Ok(ranges)
}

/// Count the lines a [`LineRange`] *owns* (lines whose first byte lies in
/// `[start, end)`), in one SWAR pass over block reads — the counting-only
/// scanner of the two-phase cold scan's pre-count phase.
///
/// A non-empty range starts at a line start, so it owns one line plus one
/// per `\n` in `[start, end - 1)` (the newline at `end - 1`, if any,
/// terminates the range's last line rather than starting a new owned one —
/// see the [`LineRange`] ownership discipline). No line reassembly, no
/// copies: the block buffer is only ever scanned by [`count_byte`].
/// Returns the owned-line count together with the I/O performed.
pub fn count_lines_in_range(
    path: impl AsRef<Path>,
    block_size: usize,
    range: LineRange,
) -> Result<(u64, IoCounters)> {
    let path = path.as_ref();
    if range.end <= range.start {
        return Ok((0, IoCounters::default()));
    }
    let mut file =
        File::open(path).map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
    if range.start > 0 {
        file.seek(SeekFrom::Start(range.start))
            .map_err(|e| RawCsvError::io(format!("seek {}", path.display()), e))?;
    }
    let mut counters = IoCounters::default();
    let mut remaining = (range.end - range.start - 1) as usize; // [start, end-1)
    let mut buf = vec![0u8; block_size.max(4096)];
    let mut lines = 1u64; // the line starting at `range.start`
    while remaining > 0 {
        let want = remaining.min(buf.len());
        let n = file
            .read(&mut buf[..want])
            .map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))?;
        counters.read_calls += 1;
        counters.bytes_read += n as u64;
        if n == 0 {
            break; // file shrank under us; the scan proper will notice
        }
        lines += count_byte(&buf[..n], b'\n') as u64;
        remaining -= n;
    }
    Ok((lines, counters))
}

/// Byte offset of the first line that starts at or after `from`: scan
/// forward for the next `\n` and return the byte after it (`len` when the
/// tail has no further newline).
fn next_line_start_at_or_after(file: &mut File, path: &Path, from: u64, len: u64) -> Result<u64> {
    if from == 0 {
        return Ok(0);
    }
    // A line starting exactly at `from` is recognized by the newline just
    // before it, so the probe starts one byte early.
    let mut pos = from - 1;
    file.seek(SeekFrom::Start(pos))
        .map_err(|e| RawCsvError::io(format!("seek {}", path.display()), e))?;
    let mut buf = [0u8; 4096];
    loop {
        let n = file
            .read(&mut buf)
            .map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))?;
        if n == 0 {
            return Ok(len);
        }
        if let Some(i) = find_byte(&buf[..n], b'\n') {
            return Ok(pos + i as u64 + 1);
        }
        pos += n as u64;
    }
}

/// A [`BlockScanner`] restricted to one [`LineRange`] — the per-worker
/// reader of the parallel scan. Yields exactly the lines the range owns,
/// with the same offsets a whole-file scan would report.
pub struct RangeScanner {
    inner: BlockScanner,
    end: u64,
    done: bool,
}

impl RangeScanner {
    /// Open `path` positioned at `range.start`.
    ///
    /// `first_line_no` seeds line numbering (purely informational; the
    /// caller usually knows how many lines precede the range, or passes 0).
    pub fn open(
        path: impl AsRef<Path>,
        block_size: usize,
        range: LineRange,
        first_line_no: u64,
    ) -> Result<Self> {
        let mut inner = BlockScanner::open(path, block_size)?;
        if range.start > 0 {
            inner.seek_to(range.start, first_line_no)?;
        }
        // Stop read-ahead at the range end (plus page-sized steps for the
        // final straddling line): with many fine-grained slices, full-block
        // read-ahead would multiply I/O by `block_size / slice_len`.
        inner.set_read_cap(range.end);
        Ok(RangeScanner {
            inner,
            end: range.end,
            done: false,
        })
    }

    /// Next owned line, or `None` once the range is exhausted.
    pub fn next_line(&mut self) -> Result<Option<LineRef<'_>>> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_line()? {
            Some(l) if l.offset < self.end => Ok(Some(l)),
            _ => {
                self.done = true;
                Ok(None)
            }
        }
    }

    /// Fused variant of [`Self::next_line`]: tokenize the line's leading
    /// fields in the same byte pass (see
    /// [`BlockScanner::next_line_tokenized`]).
    pub fn next_line_tokenized(
        &mut self,
        delimiter: u8,
        upto_field: usize,
        out: &mut Tokens,
    ) -> Result<Option<LineRef<'_>>> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_line_tokenized(delimiter, upto_field, out)? {
            Some(l) if l.offset < self.end => Ok(Some(l)),
            _ => {
                self.done = true;
                Ok(None)
            }
        }
    }

    /// Return and reset the I/O counters.
    pub fn take_counters(&mut self) -> IoCounters {
        self.inner.take_counters()
    }
}

/// Cheap fingerprint of a raw file used for update detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFileMeta {
    /// File length in bytes.
    pub len: u64,
    /// Last-modified time as reported by the filesystem.
    pub modified: Option<SystemTime>,
    /// Number of head bytes covered by `head_hash` (`min(len, 4096)`).
    pub head_len: u64,
    /// FNV-1a hash of the first `head_len` bytes. Appending rows keeps this
    /// prefix stable; replacing the file almost surely changes it.
    pub head_hash: u64,
}

/// How a file changed relative to a previously recorded [`RawFileMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileChange {
    /// Identical length and head: treat as unchanged.
    Unchanged,
    /// Longer, same head: rows were appended after `old_len`.
    Appended {
        /// Length at the time of the previous probe.
        old_len: u64,
    },
    /// Shorter or different head: the file was replaced or rewritten.
    Replaced,
}

impl RawFileMeta {
    /// Probe `path` and build a fingerprint with the default 4 KiB head.
    pub fn probe(path: impl AsRef<Path>) -> Result<Self> {
        Self::probe_with_head(path, 4096)
    }

    /// Probe `path` hashing the first `min(len, head_limit)` bytes.
    pub fn probe_with_head(path: impl AsRef<Path>, head_limit: u64) -> Result<Self> {
        let path = path.as_ref();
        let mut file =
            File::open(path).map_err(|e| RawCsvError::io(format!("open {}", path.display()), e))?;
        let meta = file
            .metadata()
            .map_err(|e| RawCsvError::io(format!("stat {}", path.display()), e))?;
        let len = meta.len();
        let head_len = len.min(head_limit);
        let mut head = vec![0u8; head_len as usize];
        file.read_exact(&mut head)
            .map_err(|e| RawCsvError::io(format!("read head of {}", path.display()), e))?;
        Ok(RawFileMeta {
            len,
            modified: meta.modified().ok(),
            head_len,
            head_hash: fnv1a(&head),
        })
    }

    /// Re-probe `path` and classify how it changed since `self` was taken.
    ///
    /// The re-probe hashes exactly `self.head_len` bytes so that appends to
    /// files shorter than the head window are still recognized as appends.
    pub fn classify_change(&self, path: impl AsRef<Path>) -> Result<FileChange> {
        let new = Self::probe_with_head(&path, self.head_len)?;
        Ok(if new.len < self.len || new.head_hash != self.head_hash {
            FileChange::Replaced
        } else if new.len > self.len {
            FileChange::Appended { old_len: self.len }
        } else if new.modified != self.modified {
            // Same length/head but touched: content beyond the head may have
            // been rewritten in place; be conservative.
            FileChange::Replaced
        } else {
            FileChange::Unchanged
        })
    }
}

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Read an entire file into memory (used by the conventional loaders, where
/// the full parse dominates anyway).
pub fn read_full(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let path = path.as_ref();
    std::fs::read(path).map_err(|e| RawCsvError::io(format!("read {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(name: &str, content: &[u8]) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_rawcsv_test_{name}_{}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(content).unwrap();
        p
    }

    fn collect_lines(path: &Path, block: usize) -> Vec<(u64, u64, Vec<u8>)> {
        let mut sc = BlockScanner::open(path, block).unwrap();
        let mut out = Vec::new();
        while let Some(l) = sc.next_line().unwrap() {
            out.push((l.line_no, l.offset, l.bytes.to_vec()));
        }
        out
    }

    #[test]
    fn lines_across_block_boundaries() {
        let content = b"aaaa,1\nbbbb,2\ncccc,3\n";
        let p = tmp_file("blocks", content);
        // Block size is clamped to >= 4096 so use content larger than that
        // to exercise boundary handling separately below; here verify basic
        // correctness.
        let lines = collect_lines(&p, 4096);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], (0, 0, b"aaaa,1".to_vec()));
        assert_eq!(lines[1].1, 7);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn long_lines_grow_buffer() {
        let long = vec![b'x'; 10_000];
        let mut content = long.clone();
        content.push(b'\n');
        content.extend_from_slice(b"tail");
        let p = tmp_file("long", &content);
        let lines = collect_lines(&p, 4096);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].2.len(), 10_000);
        assert_eq!(lines[1].2, b"tail");
        assert_eq!(lines[1].1, 10_001);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn crlf_is_trimmed() {
        let p = tmp_file("crlf", b"a,b\r\nc,d\r\n");
        let lines = collect_lines(&p, 4096);
        assert_eq!(lines[0].2, b"a,b");
        assert_eq!(lines[1].2, b"c,d");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn counters_track_bytes() {
        let p = tmp_file("counters", b"1\n2\n3\n");
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        while sc.next_line().unwrap().is_some() {}
        assert_eq!(sc.counters().bytes_read, 6);
        assert!(sc.counters().read_calls >= 1);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn seek_resumes_mid_file() {
        let p = tmp_file("seek", b"aa\nbb\ncc\n");
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        sc.seek_to(3, 1).unwrap();
        let l = sc.next_line().unwrap().unwrap();
        assert_eq!(l.bytes, b"bb");
        assert_eq!(l.line_no, 1);
        assert_eq!(l.offset, 3);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn meta_detects_append_and_replace() {
        let p = tmp_file("meta", b"header\n1,2\n");
        let m0 = RawFileMeta::probe(&p).unwrap();
        assert_eq!(m0.classify_change(&p).unwrap(), FileChange::Unchanged);

        // Append.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(b"3,4\n").unwrap();
        }
        assert_eq!(
            m0.classify_change(&p).unwrap(),
            FileChange::Appended { old_len: m0.len }
        );

        // Replace with different head.
        let m1 = RawFileMeta::probe(&p).unwrap();
        std::fs::write(&p, b"different!\n").unwrap();
        assert_eq!(m1.classify_change(&p).unwrap(), FileChange::Replaced);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn empty_file_yields_no_lines() {
        let p = tmp_file("empty", b"");
        assert!(collect_lines(&p, 4096).is_empty());
        std::fs::remove_file(p).unwrap();
    }

    fn gen_lines(n: usize) -> Vec<u8> {
        let mut content = Vec::new();
        for i in 0..n {
            content.extend_from_slice(format!("row{i},{},{}\n", i * 7, i % 13).as_bytes());
        }
        content
    }

    #[test]
    fn partitions_cover_every_line_once() {
        let content = gen_lines(257);
        let p = tmp_file("partition", &content);
        let whole = collect_lines(&p, 4096);
        for parts in [1usize, 2, 3, 7, 16, 300] {
            let ranges = partition_line_ranges(&p, parts).unwrap();
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, content.len() as u64);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must tile");
            }
            let mut merged = Vec::new();
            for r in &ranges {
                let mut sc = RangeScanner::open(&p, 4096, *r, 0).unwrap();
                while let Some(l) = sc.next_line().unwrap() {
                    assert!(l.offset >= r.start && l.offset < r.end);
                    merged.push((l.offset, l.bytes.to_vec()));
                }
            }
            let expect: Vec<(u64, Vec<u8>)> =
                whole.iter().map(|(_, o, b)| (*o, b.clone())).collect();
            assert_eq!(merged, expect, "parts = {parts}");
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partition_of_empty_file_is_empty() {
        let p = tmp_file("partition_empty", b"");
        assert!(partition_line_ranges(&p, 4).unwrap().is_empty());
        std::fs::remove_file(p).unwrap();
    }

    /// Regression: ranges must tile `[0, len)` exactly and a `RangeScanner`
    /// sweep over them must reproduce the whole-file line sequence.
    fn assert_partitions_cover(p: &Path, parts: usize) {
        let len = std::fs::metadata(p).unwrap().len();
        let whole = collect_lines(p, 4096);
        let ranges = partition_line_ranges(p, parts).unwrap();
        if len == 0 {
            assert!(ranges.is_empty());
            return;
        }
        assert_eq!(ranges[0].start, 0, "parts={parts}");
        assert_eq!(ranges.last().unwrap().end, len, "parts={parts}");
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "parts={parts}: ranges must tile");
        }
        let mut merged = Vec::new();
        for r in &ranges {
            let mut sc = RangeScanner::open(p, 4096, *r, 0).unwrap();
            while let Some(l) = sc.next_line().unwrap() {
                merged.push((l.offset, l.bytes.to_vec()));
            }
        }
        let expect: Vec<(u64, Vec<u8>)> = whole.iter().map(|(_, o, b)| (*o, b.clone())).collect();
        assert_eq!(merged, expect, "parts={parts}: lines dropped or duplicated");
    }

    #[test]
    fn partitions_keep_final_line_without_trailing_newline() {
        // The last line is unterminated; no partitioning may drop it, and a
        // cut landing inside it must collapse into the final range.
        for content in [
            b"a,b".to_vec(),                                  // single unterminated line
            b"a,b\nc,d\ne,f".to_vec(),                        // unterminated tail
            [b"x".repeat(9000), b"\ntail".to_vec()].concat(), // long line + tail
        ] {
            let p = tmp_file("partition_notrail", &content);
            for parts in [1usize, 2, 3, 8, 64] {
                assert_partitions_cover(&p, parts);
            }
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn partitions_of_single_line_longer_than_partition() {
        // One line dwarfing every byte target: all cuts snap past it (or to
        // EOF) and must still yield non-overlapping, fully covering ranges.
        let mut content = b"y".repeat(40_000);
        content.push(b'\n');
        let p = tmp_file("partition_oneline", &content);
        for parts in [2usize, 7, 100] {
            let ranges = partition_line_ranges(&p, parts).unwrap();
            assert_eq!(
                ranges,
                vec![LineRange {
                    start: 0,
                    end: content.len() as u64
                }],
                "parts={parts}: cuts inside the only line must collapse"
            );
            assert_partitions_cover(&p, parts);
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partitions_of_empty_and_newline_only_files() {
        for content in [b"".to_vec(), b"\n".to_vec(), b"\n\n\n".to_vec()] {
            let p = tmp_file("partition_nl", &content);
            for parts in [1usize, 2, 5] {
                assert_partitions_cover(&p, parts);
            }
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn tiny_files_get_exactly_min_parts_lines_partitions() {
        // Regression: equal-byte snapping on files smaller than `parts`
        // bytes used to collapse cuts and return fewer partitions than the
        // line count supports. Such files must now split line-exactly into
        // min(parts, lines) ranges.
        for (content, parts, lines) in [
            (b"a\nb\nc\n".to_vec(), 8usize, 3usize), // 6 bytes < 8 parts
            (b"a\nb\nc\n".to_vec(), 7, 3),
            (b"a\nb".to_vec(), 8, 2), // unterminated tail line
            (b"\n\n\n\n".to_vec(), 6, 4),
            (b"x,y\n".to_vec(), 9, 1),
        ] {
            let p = tmp_file("partition_tiny", &content);
            let ranges = partition_line_ranges(&p, parts).unwrap();
            assert_eq!(
                ranges.len(),
                parts.min(lines),
                "content {:?} parts {parts}: want exactly min(parts, lines)",
                String::from_utf8_lossy(&content)
            );
            assert_partitions_cover(&p, parts);
            std::fs::remove_file(p).unwrap();
        }
        // At or above the byte threshold the snapping path still applies.
        let p = tmp_file("partition_tiny_edge", b"a\nb\nc\n");
        let ranges = partition_line_ranges(&p, 6).unwrap();
        assert!(!ranges.is_empty() && ranges.len() <= 6);
        assert_partitions_cover(&p, 6);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn range_scanner_reads_little_beyond_its_slice() {
        // Regression: a RangeScanner over a small slice of a big file must
        // not pull a whole block past its range — that amplified I/O by
        // block_size / slice_len under fine-grained partition slicing.
        let content = gen_lines(4000); // ~50 KiB
        let p = tmp_file("readcap", &content);
        let len = content.len() as u64;
        let ranges = partition_line_ranges(&p, 16).unwrap();
        let mut total = 0u64;
        for r in &ranges {
            let mut sc = RangeScanner::open(&p, 1 << 20, *r, 0).unwrap();
            while sc.next_line().unwrap().is_some() {}
            let io = sc.take_counters();
            assert!(
                io.bytes_read <= (r.end - r.start) + 2 * 4096,
                "slice {:?} read {} bytes",
                r,
                io.bytes_read
            );
            total += io.bytes_read;
        }
        assert!(
            total <= len + ranges.len() as u64 * 2 * 4096,
            "whole sweep read {total} bytes of a {len}-byte file"
        );
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn count_lines_in_range_matches_range_scanner() {
        // The counting-only pre-count pass must agree with the full scanner
        // on every partitioning, including unterminated tails and newline
        // runs straddling block boundaries.
        let mut contents = vec![
            gen_lines(257),
            b"a,b".to_vec(),
            b"a,b\nc,d\ne,f".to_vec(),
            b"\n\n\n".to_vec(),
        ];
        let mut long = vec![b'z'; 9000];
        long.extend_from_slice(b"\nshort\n");
        contents.push(long);
        for content in contents {
            let p = tmp_file("count_range", &content);
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = partition_line_ranges(&p, parts).unwrap();
                for r in &ranges {
                    let (counted, io) = count_lines_in_range(&p, 4096, *r).unwrap();
                    let mut sc = RangeScanner::open(&p, 4096, *r, 0).unwrap();
                    let mut scanned = 0u64;
                    while sc.next_line().unwrap().is_some() {
                        scanned += 1;
                    }
                    assert_eq!(counted, scanned, "parts={parts} range={r:?}");
                    assert!(io.bytes_read <= r.end - r.start);
                }
            }
            std::fs::remove_file(p).unwrap();
        }
        // Degenerate empty range.
        let p = tmp_file("count_range_empty", b"a\nb\n");
        let (n, io) = count_lines_in_range(&p, 4096, LineRange { start: 2, end: 2 }).unwrap();
        assert_eq!((n, io.bytes_read), (0, 0));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn partition_snaps_to_line_starts() {
        // One huge line followed by short ones: every cut lands after the
        // huge line or collapses entirely.
        let mut content = vec![b'x'; 9000];
        content.push(b'\n');
        content.extend_from_slice(b"a,b\nc,d\n");
        let p = tmp_file("partition_snap", &content);
        let ranges = partition_line_ranges(&p, 4).unwrap();
        for r in &ranges[1..] {
            assert!(
                r.start == 9001 || content[r.start as usize - 1] == b'\n',
                "range start {} is not a line start",
                r.start
            );
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn fused_scan_matches_next_line_plus_tokenizer() {
        use crate::tokenizer::TokenizerConfig;
        let content = gen_lines(113);
        let p = tmp_file("fused", &content);
        for upto in [0usize, 1, 2, usize::MAX] {
            let mut a = BlockScanner::open(&p, 4096).unwrap();
            let mut b = BlockScanner::open(&p, 4096).unwrap();
            let cfg = TokenizerConfig::default();
            let mut ta = Tokens::new();
            let mut tb = Tokens::new();
            loop {
                let la = a
                    .next_line_tokenized(b',', upto, &mut ta)
                    .unwrap()
                    .map(|l| (l.line_no, l.offset, l.bytes.to_vec()));
                let lb = b
                    .next_line()
                    .unwrap()
                    .map(|l| (l.line_no, l.offset, l.bytes.to_vec()));
                assert_eq!(la, lb, "upto = {upto}");
                let Some((_, _, line)) = lb else { break };
                cfg.tokenize_selective(&line, upto, &mut tb);
                assert_eq!(ta.len(), tb.len(), "upto = {upto} line {line:?}");
                assert_eq!(ta.reached_end_of_line(), tb.reached_end_of_line());
                for f in 0..tb.len() {
                    assert_eq!(ta.get(f), tb.get(f), "upto = {upto} field {f}");
                }
            }
        }
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn fused_scan_handles_crlf_and_unterminated_tail() {
        let p = tmp_file("fused_crlf", b"a,b\r\nlong,unterminated");
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        let mut t = Tokens::new();
        {
            let l = sc
                .next_line_tokenized(b',', usize::MAX, &mut t)
                .unwrap()
                .unwrap();
            assert_eq!(l.bytes, b"a,b");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(1).map(|s| (s.start, s.end)),
            Some((2, 3)),
            "CR excluded"
        );
        {
            let l = sc
                .next_line_tokenized(b',', usize::MAX, &mut t)
                .unwrap()
                .unwrap();
            assert_eq!(l.bytes, b"long,unterminated");
        }
        assert_eq!(t.len(), 2);
        assert!(t.reached_end_of_line());
        assert!(sc
            .next_line_tokenized(b',', usize::MAX, &mut t)
            .unwrap()
            .is_none());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn fused_scan_across_block_boundaries() {
        // Lines sized so fields straddle the 4 KiB refill boundary.
        let mut content = Vec::new();
        for i in 0..200 {
            content.extend_from_slice(format!("{:0>40},{:0>40},{i}\n", i, i * 3).as_bytes());
        }
        let p = tmp_file("fused_blocks", &content);
        let mut sc = BlockScanner::open(&p, 4096).unwrap();
        let mut t = Tokens::new();
        let mut rows = 0;
        while let Some(l) = sc.next_line_tokenized(b',', usize::MAX, &mut t).unwrap() {
            let _ = l;
            assert_eq!(t.len(), 3);
            rows += 1;
        }
        assert_eq!(rows, 200);
        std::fs::remove_file(p).unwrap();
    }
}
