//! Columnar batches flowing between operators.
//!
//! # The typed-batch / selection-vector contract
//!
//! A [`Batch`] is a set of equal-length [`Column`]s plus an optional
//! **selection vector**. Columns come in three storage classes:
//!
//! * [`Column::Typed`] — cache-format typed storage
//!   ([`nodb_rawcache::TypedColumn`]: value vector + null bitmap). This is
//!   how the warm path hands cache segments to the engine *without per-cell
//!   `Datum` boxing*: the scan exports a segment of the raw cache
//!   (`TypedColumn::export_range` / `gather`) and moves it straight into the
//!   batch. Vectorized predicate and aggregate kernels read the value
//!   vectors directly.
//! * [`Column::Datums`] — one boxed [`Datum`] per row. This is the
//!   **fallback** representation; it engages whenever values are produced
//!   cell by cell (the raw-file tokenize/parse path, `MemSource`, loaded
//!   stores pushing through [`Batch::push_value`]) or whenever batches of
//!   mixed storage classes are concatenated. Every operator accepts it; the
//!   kernels simply fall back to row-at-a-time evaluation over it.
//! * [`Column::Nulls`] — an all-NULL column of known length, used for
//!   predicate-only scan positions (`ScanRequest::materialize[i] == false`):
//!   the predicate ran against the real values, so the output batch never
//!   materializes them (late materialization).
//!
//! The selection vector (`sel`) is a sorted list of *physical* row indices:
//! logical row `r` of the batch is physical row `sel[r]` of every column.
//! A filter over a typed batch can therefore pass the full segment
//! downstream and let aggregation iterate only the selected indices,
//! deferring (or entirely skipping) the gather. Every accessor —
//! [`Batch::value`], [`Batch::row`], [`BatchRow`] — resolves through the
//! selection, so row-at-a-time fallbacks stay oblivious and correct.
//! Mutating appenders require a dense batch; [`Batch::extend_from`]
//! materializes selections as needed.

use nodb_rawcache::TypedColumn;
use nodb_rawcsv::Datum;

/// Default number of rows per batch.
pub const BATCH_SIZE: usize = 1024;

/// One column of a batch; see the module docs for the storage classes.
#[derive(Debug)]
pub enum Column {
    /// Boxed datums — the universal fallback representation.
    Datums(Vec<Datum>),
    /// Typed cache-format storage (values + null bitmap), enabling
    /// vectorized kernels.
    Typed(TypedColumn),
    /// All-NULL column of the given physical length (late materialization
    /// of predicate-only positions).
    Nulls(usize),
}

impl Column {
    /// Physical rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::Datums(v) => v.len(),
            Column::Typed(c) => c.len(),
            Column::Nulls(n) => *n,
        }
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at physical row `i` (NULL past the end, which only a ragged
    /// caller can reach).
    #[inline]
    pub fn datum(&self, i: usize) -> Datum {
        match self {
            Column::Datums(v) => v.get(i).cloned().unwrap_or(Datum::Null),
            Column::Typed(c) => c.datum(i).unwrap_or(Datum::Null),
            Column::Nulls(_) => Datum::Null,
        }
    }

    /// Append one value, degrading storage class when the value cannot be
    /// represented (a non-NULL into a [`Column::Nulls`]).
    pub fn push(&mut self, d: Datum) {
        match self {
            Column::Datums(v) => v.push(d),
            Column::Typed(c) => c.push(&d),
            Column::Nulls(n) => {
                if d.is_null() {
                    *n += 1;
                } else {
                    let mut v = vec![Datum::Null; *n];
                    v.push(d);
                    *self = Column::Datums(v);
                }
            }
        }
    }

    /// The physical rows `sel[i]`, in order, as a new column of the same
    /// storage class.
    pub fn gather(&self, sel: &[u32]) -> Column {
        match self {
            Column::Datums(v) => {
                Column::Datums(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
            Column::Typed(c) => Column::Typed(c.gather(sel, 0)),
            Column::Nulls(_) => Column::Nulls(sel.len()),
        }
    }

    /// Append `other` (restricted to `other_sel` when given) after this
    /// column's rows. Matching typed storage concatenates segments; any
    /// mixed pairing degrades this column to [`Column::Datums`].
    pub fn append(&mut self, other: Column, other_sel: Option<&[u32]>) {
        // All-null tails never force a representation change.
        let other_rows = other_sel.map(<[u32]>::len).unwrap_or(other.len());
        if let Column::Nulls(_) = other {
            for _ in 0..other_rows {
                self.push(Datum::Null);
            }
            return;
        }
        match (&mut *self, other, other_sel) {
            (Column::Typed(a), Column::Typed(b), None) => a.append_segment(b),
            (Column::Typed(a), Column::Typed(b), Some(sel)) => a.append_segment(b.gather(sel, 0)),
            (Column::Datums(a), b, sel) => match sel {
                None => {
                    if let Column::Datums(bv) = b {
                        a.extend(bv);
                    } else {
                        for i in 0..b.len() {
                            a.push(b.datum(i));
                        }
                    }
                }
                Some(sel) => {
                    for &i in sel {
                        a.push(b.datum(i as usize));
                    }
                }
            },
            (this, b, sel) => {
                // Typed vs Datums, or an all-NULL prefix meeting real data:
                // degrade to datums and retry.
                let mut v: Vec<Datum> = Vec::with_capacity(this.len() + other_rows);
                for i in 0..this.len() {
                    v.push(this.datum(i));
                }
                let mut col = Column::Datums(v);
                col.append(b, sel);
                *self = col;
            }
        }
    }
}

/// A column-major batch of values. All columns have the same physical
/// length; with a selection vector attached, the batch's *logical* rows are
/// the selected physical rows, in order (see module docs).
#[derive(Debug, Default)]
pub struct Batch {
    cols: Vec<Column>,
    /// Sorted physical indices of the logical rows; `None` = dense.
    sel: Option<Vec<u32>>,
    rows: usize,
}

impl Batch {
    /// Empty batch with `ncols` datum-storage columns, each with capacity
    /// for [`BATCH_SIZE`] rows.
    pub fn with_columns(ncols: usize) -> Self {
        Batch {
            cols: (0..ncols)
                .map(|_| Column::Datums(Vec::with_capacity(BATCH_SIZE)))
                .collect(),
            sel: None,
            rows: 0,
        }
    }

    /// Build directly from datum columns.
    ///
    /// # Panics
    /// Panics if the columns have differing lengths.
    pub fn from_columns(cols: Vec<Vec<Datum>>) -> Self {
        Batch::from_parts(cols.into_iter().map(Column::Datums).collect(), None)
    }

    /// Build from storage-class columns plus an optional selection vector.
    ///
    /// # Panics
    /// Panics when column lengths differ, or when a selected index is out
    /// of range.
    pub fn from_parts(cols: Vec<Column>, sel: Option<Vec<u32>>) -> Self {
        let phys = cols.first().map(Column::len).unwrap_or(0);
        for c in &cols {
            assert_eq!(c.len(), phys, "ragged batch");
        }
        let rows = match &sel {
            Some(s) => {
                debug_assert!(s.iter().all(|&i| (i as usize) < phys), "selection range");
                s.len()
            }
            None => phys,
        };
        Batch { cols, sel, rows }
    }

    /// A batch with no columns but a logical row count — `COUNT(*)`-style
    /// scans request zero attributes yet still stream row cardinality.
    pub fn rows_only(rows: usize) -> Self {
        Batch {
            cols: Vec::new(),
            sel: None,
            rows,
        }
    }

    /// Number of logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// True when the batch has no logical rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// True when the batch reached its target size.
    pub fn is_full(&self) -> bool {
        self.rows >= BATCH_SIZE
    }

    /// Column `c`'s storage (physical rows; combine with
    /// [`Self::selection`] for the logical view).
    #[inline]
    pub fn column(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// The selection vector, when the batch carries one.
    #[inline]
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Physical index of logical row `r`.
    #[inline]
    fn phys(&self, r: usize) -> usize {
        match &self.sel {
            Some(s) => s[r] as usize,
            None => r,
        }
    }

    /// Value at logical (`row`, `col`).
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Datum {
        self.cols[col].datum(self.phys(row))
    }

    /// Append one value to column `c` (caller keeps columns aligned and
    /// finishes the row with [`Self::finish_row`]). Requires a dense batch.
    #[inline]
    pub fn push_value(&mut self, c: usize, d: Datum) {
        debug_assert!(self.sel.is_none(), "cannot push into a selected batch");
        self.cols[c].push(d);
    }

    /// Declare one full row appended across all columns.
    #[inline]
    pub fn finish_row(&mut self) {
        self.rows += 1;
        debug_assert!(self.cols.iter().all(|c| c.len() == self.rows));
    }

    /// Append a row given as a slice of datums.
    pub fn push_row(&mut self, row: &[Datum]) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        debug_assert!(self.sel.is_none(), "cannot push into a selected batch");
        for (c, d) in row.iter().enumerate() {
            self.cols[c].push(d.clone());
        }
        self.rows += 1;
    }

    /// Extract logical row `r` as an owned vector.
    pub fn row(&self, r: usize) -> Vec<Datum> {
        let p = self.phys(r);
        self.cols.iter().map(|c| c.datum(p)).collect()
    }

    /// Keep only the logical rows whose index is in `keep` (ascending).
    pub fn take(&self, keep: &[usize]) -> Batch {
        let phys: Vec<u32> = keep.iter().map(|&r| self.phys(r) as u32).collect();
        Batch {
            cols: self.cols.iter().map(|c| c.gather(&phys)).collect(),
            sel: None,
            rows: keep.len(),
        }
    }

    /// Resolve the selection vector into dense columns (no-op when dense).
    pub fn materialize(&mut self) {
        if let Some(sel) = self.sel.take() {
            for c in &mut self.cols {
                *c = c.gather(&sel);
            }
        }
    }

    /// Append every row of `other` after this batch's rows.
    ///
    /// This is the reorder-free concatenation the parallel scan relies on:
    /// per-partition output batches are stitched back together in partition
    /// order, so downstream operators observe exactly the row order a
    /// sequential scan would have produced. An empty batch *adopts* the
    /// other's storage (typed columns and selection travel through intact);
    /// otherwise columns append pairwise, degrading to datum storage when
    /// the classes mix.
    ///
    /// # Panics
    /// Panics when the column counts differ.
    pub fn extend_from(&mut self, other: Batch) {
        assert_eq!(self.cols.len(), other.cols.len(), "batch arity mismatch");
        if self.rows == 0 {
            *self = other;
            return;
        }
        self.materialize();
        let sel = other.sel.as_deref();
        let rows = other.rows;
        for (col, ocol) in self.cols.iter_mut().zip(other.cols) {
            col.append(ocol, sel);
        }
        self.rows += rows;
    }

    /// Consume into dense datum columns (materializing any selection).
    pub fn into_columns(mut self) -> Vec<Vec<Datum>> {
        self.materialize();
        self.cols
            .into_iter()
            .map(|c| match c {
                Column::Datums(v) => v,
                other => (0..other.len()).map(|i| other.datum(i)).collect(),
            })
            .collect()
    }
}

/// Random access to one logical row, the index space being defined by the
/// evaluation context (scan attribute positions for pushed predicates, batch
/// column positions above the scan).
pub trait RowAccess {
    /// Value of column `col` in this row. Owned: typed columns materialize
    /// the datum on read, so references into storage are not available.
    fn value(&self, col: usize) -> Datum;
}

/// A row borrowed from a batch (selection-aware).
pub struct BatchRow<'a> {
    batch: &'a Batch,
    row: usize,
}

impl<'a> BatchRow<'a> {
    /// Borrow logical row `row` of `batch`.
    pub fn new(batch: &'a Batch, row: usize) -> Self {
        BatchRow { batch, row }
    }
}

impl RowAccess for BatchRow<'_> {
    #[inline]
    fn value(&self, col: usize) -> Datum {
        self.batch.value(self.row, col)
    }
}

/// A row backed by a plain slice (used by scan sources before a batch is
/// formed — this is how *selective tuple formation* evaluates the predicate
/// without building the tuple).
pub struct SliceRow<'a>(pub &'a [Datum]);

impl RowAccess for SliceRow<'_> {
    #[inline]
    fn value(&self, col: usize) -> Datum {
        self.0[col].clone()
    }
}

/// Borrowed columnar view for the vectorized predicate kernels
/// ([`crate::expr::RExpr::filter_columnar`]): the kernels run over these
/// before any batch (or any copy) exists, so a scan can filter borrowed
/// cache segments and materialize only the survivors.
pub enum ColView<'a> {
    /// Typed column; physical row `i` of the view reads `col` at
    /// `base + i` (a zero-copy window into a longer cache column).
    Typed {
        /// Backing typed storage.
        col: &'a TypedColumn,
        /// First backing row of the view.
        base: usize,
    },
    /// Boxed datums.
    Datums(&'a [Datum]),
    /// All-NULL column.
    Nulls,
}

impl ColView<'_> {
    /// Value at view row `i` (row-at-a-time fallback path).
    #[inline]
    pub fn datum(&self, i: usize) -> Datum {
        match self {
            ColView::Typed { col, base } => col.datum(base + i).unwrap_or(Datum::Null),
            ColView::Datums(v) => v.get(i).cloned().unwrap_or(Datum::Null),
            ColView::Nulls => Datum::Null,
        }
    }
}

/// A row adapter over a set of column views (the kernels' row-at-a-time
/// fallback evaluates arbitrary expressions through this).
pub struct ViewRow<'a> {
    /// The viewed columns.
    pub cols: &'a [ColView<'a>],
    /// View row index.
    pub row: usize,
}

impl RowAccess for ViewRow<'_> {
    #[inline]
    fn value(&self, col: usize) -> Datum {
        self.cols[col].datum(self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_rawcsv::ColumnType;

    fn typed_int(vals: &[Option<i64>]) -> Column {
        let mut c = TypedColumn::new(ColumnType::Int);
        for v in vals {
            match v {
                Some(v) => c.push(&Datum::Int(*v)),
                None => c.push(&Datum::Null),
            }
        }
        Column::Typed(c)
    }

    #[test]
    fn push_and_read_back() {
        let mut b = Batch::with_columns(2);
        b.push_row(&[Datum::Int(1), Datum::from("a")]);
        b.push_row(&[Datum::Int(2), Datum::from("b")]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.value(1, 0), Datum::Int(2));
        assert_eq!(b.row(0), vec![Datum::Int(1), Datum::from("a")]);
    }

    #[test]
    fn take_filters_rows() {
        let mut b = Batch::with_columns(1);
        for i in 0..5 {
            b.push_row(&[Datum::Int(i)]);
        }
        let t = b.take(&[0, 2, 4]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.value(1, 0), Datum::Int(2));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        let _ = Batch::from_columns(vec![vec![Datum::Int(1)], vec![]]);
    }

    #[test]
    fn extend_from_preserves_row_order() {
        let mut a = Batch::with_columns(2);
        a.push_row(&[Datum::Int(1), Datum::from("a")]);
        let mut b = Batch::with_columns(2);
        b.push_row(&[Datum::Int(2), Datum::from("b")]);
        b.push_row(&[Datum::Int(3), Datum::from("c")]);
        a.extend_from(b);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row(0), vec![Datum::Int(1), Datum::from("a")]);
        assert_eq!(a.row(2), vec![Datum::Int(3), Datum::from("c")]);
        // Extending with an empty batch is a no-op.
        a.extend_from(Batch::with_columns(2));
        assert_eq!(a.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn extend_from_rejects_arity_mismatch() {
        let mut a = Batch::with_columns(1);
        a.extend_from(Batch::with_columns(2));
    }

    #[test]
    fn row_access_adapters() {
        let mut b = Batch::with_columns(2);
        b.push_row(&[Datum::Int(7), Datum::Int(8)]);
        let r = BatchRow::new(&b, 0);
        assert_eq!(r.value(1), Datum::Int(8));
        let vals = [Datum::Int(9)];
        let s = SliceRow(&vals);
        assert_eq!(s.value(0), Datum::Int(9));
    }

    #[test]
    fn typed_batch_with_selection_is_transparent() {
        let b = Batch::from_parts(
            vec![
                typed_int(&[Some(10), None, Some(30), Some(40)]),
                Column::Nulls(4),
            ],
            Some(vec![0, 2, 3]),
        );
        assert_eq!(b.rows(), 3);
        assert_eq!(b.value(0, 0), Datum::Int(10));
        assert_eq!(b.value(1, 0), Datum::Int(30));
        assert_eq!(b.value(2, 0), Datum::Int(40));
        assert_eq!(b.value(1, 1), Datum::Null, "unmaterialized column");
        assert_eq!(b.row(1), vec![Datum::Int(30), Datum::Null]);
        // take() composes the selections.
        let t = b.take(&[0, 2]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.value(1, 0), Datum::Int(40));
    }

    #[test]
    fn empty_batch_adopts_typed_storage() {
        let mut acc = Batch::with_columns(1);
        let typed = Batch::from_parts(vec![typed_int(&[Some(1), Some(2)])], Some(vec![1]));
        acc.extend_from(typed);
        assert_eq!(acc.rows(), 1);
        assert!(matches!(acc.column(0), Column::Typed(_)), "storage adopted");
        assert_eq!(acc.value(0, 0), Datum::Int(2));
        // A second typed extend materializes the selection and concatenates.
        acc.extend_from(Batch::from_parts(vec![typed_int(&[None, Some(9)])], None));
        assert_eq!(acc.rows(), 3);
        assert_eq!(acc.row(1), vec![Datum::Null]);
        assert_eq!(acc.row(2), vec![Datum::Int(9)]);
    }

    #[test]
    fn mixed_storage_extend_degrades_to_datums() {
        let mut acc = Batch::with_columns(1);
        acc.push_row(&[Datum::Int(1)]);
        acc.extend_from(Batch::from_parts(vec![typed_int(&[Some(2)])], None));
        assert_eq!(acc.rows(), 2);
        assert_eq!(acc.value(1, 0), Datum::Int(2));
        assert!(matches!(acc.column(0), Column::Datums(_)));
        // Nulls columns extend anything without changing its class.
        let mut t = Batch::from_parts(vec![typed_int(&[Some(5)])], None);
        t.extend_from(Batch::from_parts(vec![Column::Nulls(2)], None));
        assert_eq!(t.rows(), 3);
        assert!(matches!(t.column(0), Column::Typed(_)));
        assert_eq!(t.value(2, 0), Datum::Null);
    }

    #[test]
    fn into_columns_materializes_selection() {
        let b = Batch::from_parts(
            vec![typed_int(&[Some(1), Some(2), Some(3)])],
            Some(vec![0, 2]),
        );
        assert_eq!(b.into_columns(), vec![vec![Datum::Int(1), Datum::Int(3)]]);
    }

    #[test]
    fn view_row_reads_all_classes() {
        let datums = [Datum::from("x")];
        let tc = match typed_int(&[Some(4)]) {
            Column::Typed(c) => c,
            _ => unreachable!(),
        };
        let views = [
            ColView::Typed { col: &tc, base: 0 },
            ColView::Datums(&datums),
            ColView::Nulls,
        ];
        let row = ViewRow {
            cols: &views,
            row: 0,
        };
        assert_eq!(row.value(0), Datum::Int(4));
        assert_eq!(row.value(1), Datum::from("x"));
        assert_eq!(row.value(2), Datum::Null);
    }
}
