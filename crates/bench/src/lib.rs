//! # nodb-bench — experiment harness
//!
//! Reproduces every figure and demo scenario of the paper (see the table in
//! [`experiments`]). Run everything with:
//!
//! ```text
//! cargo run --release -p nodb-bench --bin experiments -- all --scale small
//! ```
//!
//! or a single experiment (`fig2`, `fig3`, `seq`, `adapt`, `dataset`,
//! `race`, `updates`, `knobs`). `--scale full` uses paper-comparable file
//! sizes; `small` finishes in seconds for CI.
//!
//! Criterion microbenchmarks live in `benches/`: tokenizer (full vs
//! selective vs SWAR), positional-map jumps vs scans, cache hit vs
//! re-parse, and end-to-end query latency.

pub mod experiments;
pub mod report;
pub mod systems;
pub mod workload;

pub use experiments::{run, ExperimentReport, ALL};
pub use workload::Scale;
