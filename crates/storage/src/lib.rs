//! # nodb-storage — the conventional load-then-query substrate
//!
//! The paper's friendly race (§4.3) pits PostgresRaw against PostgreSQL,
//! MySQL and a commercial "DBMS X", all of which must *load* (and optionally
//! index) before answering their first query. This crate implements those
//! comparators as real storage engines sharing `nodb-engine` above the scan:
//!
//! * [`tuple`] — tagged binary row encoding with skip-decoding;
//! * [`page`] — slotted pages;
//! * [`heap`] — on-disk heap files read through an LRU buffer pool;
//! * [`colstore`] — per-column binary segments (the DBMS X model);
//! * [`index`] — B-tree secondary indexes built at load time;
//! * [`scan`] — [`nodb_engine::ScanSource`] implementations (sequential heap
//!   scan, column scan, row-id index fetch);
//! * [`dbms`] — the [`dbms::ConventionalDb`] facade with per-system
//!   profiles and load reports for data-to-query-time accounting.

pub mod colstore;
pub mod dbms;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod scan;
pub mod tuple;

pub use dbms::{ConventionalDb, DbProfile, LoadReport};
pub use error::{StorageError, StorageResult};
