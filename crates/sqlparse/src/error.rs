//! Parse errors with positions.

use std::fmt;

/// A lexing or parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the query text where the problem was found.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Construct an error at `position`.
    pub fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }

    /// Render a two-line diagnostic with a caret under the offending byte.
    pub fn diagnostic(&self, query: &str) -> String {
        let mut out = String::new();
        out.push_str(query);
        out.push('\n');
        for _ in 0..self.position.min(query.len()) {
            out.push(' ');
        }
        out.push('^');
        out.push(' ');
        out.push_str(&self.message);
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_points_at_position() {
        let e = ParseError::new(7, "unexpected token");
        let d = e.diagnostic("SELECT @ FROM t");
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines[0], "SELECT @ FROM t");
        assert!(lines[1].starts_with("       ^"));
    }
}
