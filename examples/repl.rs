//! Interactive NoDB shell — the closest thing to the paper's live demo.
//!
//! ```text
//! cargo run --release --example repl -- path/to/file.csv
//! ```
//! (without an argument, a 100k-row synthetic file is generated)
//!
//! Commands:
//! * any `SELECT ... FROM t ...` — run it and print result + breakdown;
//! * `\panel`   — the Fig 2 monitoring panel;
//! * `\plan`    — EXPLAIN of the last query;
//! * `\cache N` / `\map N` — set budgets to N bytes (demo sliders);
//! * `\q`       — quit.

use std::io::{BufRead, Write};

use nodb_repro::prelude::*;

fn main() {
    let mut db = NoDb::new(NoDbConfig::default());
    let arg = std::env::args().nth(1);
    let _scratch;
    match arg {
        Some(path) => {
            db.register_csv("t", &path).expect("register file");
            println!("registered {path} as table t (schema inferred):");
        }
        None => {
            let dir = std::env::temp_dir().join(format!("nodb_repl_{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("scratch");
            let csv = dir.join("demo.csv");
            GeneratorConfig::uniform_ints(10, 100_000, 1)
                .generate_file(&csv)
                .expect("generate");
            db.register_csv("t", &csv).expect("register");
            println!(
                "no file given — generated {} (100k rows) as table t:",
                csv.display()
            );
            _scratch = dir;
        }
    }
    println!("  {}", db.schema("t").unwrap());
    println!("type SQL, \\panel, \\plan, \\cache N, \\map N, or \\q\n");

    let stdin = std::io::stdin();
    loop {
        print!("nodb> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "\\quit" | "exit" => break,
            "\\panel" => match db.snapshot("t") {
                Some(s) => println!("{}", s.panel()),
                None => println!("no table registered"),
            },
            "\\plan" => match db.last_report() {
                Some(r) => println!("{}", r.plan),
                None => println!("no query has run yet"),
            },
            _ if line.starts_with("\\cache ") || line.starts_with("\\map ") => {
                let mut parts = line.split_whitespace();
                let which = parts.next().unwrap_or("");
                match parts.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(bytes) if which == "\\cache" => {
                        db.set_cache_budget(bytes);
                        println!("cache budget = {bytes} bytes");
                    }
                    Some(bytes) => {
                        db.set_map_budget(bytes);
                        println!("map budget = {bytes} bytes");
                    }
                    None => println!("usage: {which} <bytes>"),
                }
            }
            sql => match db.query(sql) {
                Ok(r) => {
                    println!("{r}");
                    if let Some(rep) = db.last_report() {
                        println!(
                            "time {:?}  fully_cached={}  [{}]\n",
                            rep.total,
                            rep.fully_cached,
                            rep.breakdown.panel_row()
                        );
                    }
                }
                Err(e) => println!("error: {e}\n"),
            },
        }
    }
    println!("bye");
}
