//! Sidecar file I/O: crash-safe writes and fault-tolerant reads.
//!
//! Writes go through the classic temp-file dance — write, `fsync`, atomic
//! rename into place, `fsync` the parent directory — so a crash at any
//! point leaves either the old sidecar or the new one, never a torn file
//! with the final name. Reads route through the [`BlockSource`] seam from
//! `nodb-rawcsv`, so the same fault-injection and retry machinery that
//! exercises raw scans (`NODB_TEST_FAULTS`, `IoProfile`) also exercises
//! snapshot restore.
//!
//! [`BlockSource`]: nodb_rawcsv::BlockSource

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nodb_rawcsv::reader::{make_source_with, Window};
use nodb_rawcsv::IoProfile;

use crate::format::{decode_snapshot, SnapshotError, TableSnapshot};

/// The sidecar lives next to the data file: `lineitem.csv` →
/// `lineitem.csv.nodb-snap`. Same directory, so the atomic rename stays on
/// one filesystem and the snapshot travels with the data.
pub const SIDECAR_SUFFIX: &str = ".nodb-snap";

/// Sidecar path for a data file.
pub fn sidecar_path(data_path: &Path) -> PathBuf {
    let mut name = data_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(SIDECAR_SUFFIX);
    data_path.with_file_name(name)
}

/// Per-process counter so concurrent writers in one process never collide
/// on a temp name.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` crash-safely: unique temp file in the same
/// directory, `write_all` + `sync_all`, atomic rename over `path`, then a
/// best-effort `fsync` of the parent directory so the rename itself is
/// durable.
pub fn write_sidecar_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(format!(".tmp.{pid}.{seq}"));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Leave no droppings behind a failed attempt; the rename (when it
        // failed) may or may not have consumed the temp file.
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Durability of the rename: fsync the directory entry. Best-effort —
    // a failure here only narrows the crash window, it cannot tear data.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read the whole sidecar through the [`BlockSource`] seam, so fault
/// injection and retry apply to restore exactly as they do to scans.
///
/// [`BlockSource`]: nodb_rawcsv::BlockSource
pub fn read_sidecar_bytes(
    path: &Path,
    block_size: usize,
    profile: IoProfile,
) -> Result<Vec<u8>, SnapshotError> {
    let mut source = make_source_with(path, block_size, 0, profile)
        .map_err(|e| SnapshotError::Io(e.to_string()))?;
    let mut win = Window::at(0);
    // Capacity hint only — the loop still reads to EOF, so a file that
    // grows or shrinks between stat and read stays correct.
    let hint = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut bytes = Vec::with_capacity(usize::try_from(hint).unwrap_or(0));
    loop {
        match source.refill(&mut win) {
            Ok(0) => break,
            Ok(_) => {
                bytes.extend_from_slice(&win.buf[win.pos..win.filled]);
                win.pos = win.filled;
            }
            Err(e) => return Err(SnapshotError::Io(e.to_string())),
        }
    }
    Ok(bytes)
}

/// Load and validate the sidecar for `data_path`. `Ok(None)` means no
/// sidecar exists (a fresh table, not an error); every other failure is a
/// [`SnapshotError`] the caller answers by starting cold.
pub fn load_snapshot(
    data_path: &Path,
    block_size: usize,
    profile: IoProfile,
) -> Result<Option<TableSnapshot>, SnapshotError> {
    let side = sidecar_path(data_path);
    if !side.exists() {
        return Ok(None);
    }
    let bytes = read_sidecar_bytes(&side, block_size, profile)?;
    decode_snapshot(&bytes).map(Some)
}

/// Encode `snap` and write it as `data_path`'s sidecar, crash-safely.
pub fn save_snapshot(data_path: &Path, snap: &TableSnapshot) -> Result<PathBuf, SnapshotError> {
    let bytes = crate::format::encode_snapshot(snap);
    let side = sidecar_path(data_path);
    write_sidecar_atomic(&side, &bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
    Ok(side)
}
