//! Cancellation-check overhead benchmark — ISSUE 6's acceptance measurement.
//!
//! Resilience must be close to free on the hot path: the cooperative
//! deadline/cancel checks (one atomic load + occasional `Instant::now` every
//! `CHECK_STRIDE` rows, plus a stop-flag test per block refill) ride on every
//! scan whether or not a caller sets a deadline. This bench measures warm
//! (fully-cached) filter+aggregate queries in two modes at equal thread
//! counts:
//!
//! * `no_ctx` — `NoDb::query`, the pre-ISSUE entry point (unbounded context
//!   built internally).
//! * `ctx` — `NoDb::query_with_ctx` with a generous 60 s deadline, so every
//!   cooperative check actually polls the clock against a live deadline.
//! * `epoch` — `NoDb::query` with `detect_updates` *on* (ISSUE 10): every
//!   query re-validates the table's source epoch under the planning lock
//!   (one `open`/`stat`/two-page read) and the warm path carries the
//!   torn-row fence checks.
//!
//! All modes must be within run-to-run noise of each other (<5% — far
//! inside the CI gate's 25% budget). Records land in
//! `BENCH_resilience.json` with the `mode` ablation column and feed the CI
//! perf gate. `NODB_BENCH_ROWS` overrides the row count.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::scratch_dir;
use nodb_core::{NoDb, NoDbConfig, QueryCtx};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn config(threads: usize) -> NoDbConfig {
    NoDbConfig {
        scan_threads: threads,
        detect_updates: false,
        ..NoDbConfig::default()
    }
}

/// A db whose cache fully covers every attribute the query touches: run the
/// query twice so the second-and-later executions are pure warm path.
fn warmed_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig, sql: &str) -> NoDb {
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    db.query(sql).unwrap();
    let r = db.query(sql).unwrap();
    assert!(
        db.admin().last_report().unwrap().fully_cached,
        "warm query must be served from the cache"
    );
    black_box(r.len());
    db
}

fn bench_resilience(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_resilience");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0x6E51);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();

    // The warm_path acceptance shape: ~50% selective filter + aggregates.
    let queries: [(&str, String); 2] = [
        (
            "ctx_agg",
            "SELECT COUNT(*), SUM(c1), MIN(c5), MAX(c5), AVG(c1) FROM t \
             WHERE c5 < 500000000"
                .into(),
        ),
        (
            "ctx_filter",
            "SELECT c1, c5 FROM t WHERE c5 < 300000000".into(),
        ),
    ];

    let mut group = c.benchmark_group(format!("resilience_{rows}_rows"));
    group.sample_size(6);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for threads in [1usize, 4] {
        for (name, sql) in &queries {
            let db = warmed_db(&path, &schema, config(threads), sql);
            // A second instance with update detection on: the per-query
            // epoch re-validation and the fence checks ride every query.
            let db_epoch = warmed_db(
                &path,
                &schema,
                NoDbConfig {
                    detect_updates: true,
                    ..config(threads)
                },
                sql,
            );
            let expect = db.query(sql).unwrap();
            // A deadline far in the future: every cooperative check pays the
            // full "live deadline" cost, but the query never trips it.
            let deadline = QueryCtx::from_timeout_ms(60_000);
            for mode in ["no_ctx", "ctx", "epoch"] {
                let durations = RefCell::new(Vec::new());
                group.bench_function(format!("{name}_{mode}_threads_{threads}"), |b| {
                    b.iter(|| {
                        let t = Instant::now();
                        let r = match mode {
                            "no_ctx" => db.query(sql).unwrap(),
                            "epoch" => db_epoch.query(sql).unwrap(),
                            _ => db.query_with_ctx(sql, &deadline).unwrap(),
                        };
                        durations.borrow_mut().push(t.elapsed());
                        assert_eq!(r, expect, "{name} {mode} changed the answer");
                        black_box(r.len())
                    })
                });
                samples.borrow_mut().push(
                    BenchRecord::from_samples(*name, threads, rows, &durations.borrow())
                        .with_mode(mode),
                );
            }
        }
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_resilience.json");
    update_bench_json(&out, &records).expect("write BENCH_resilience.json");
    for threads in [1usize, 4] {
        for (name, _) in &queries {
            let at = |mode: &str| {
                records
                    .iter()
                    .find(|r| r.name == *name && r.scan_threads == threads && r.mode == mode)
                    .map(|r| r.mean_ms)
                    .unwrap_or(f64::NAN)
            };
            let (plain_ms, ctx_ms, epoch_ms) = (at("no_ctx"), at("ctx"), at("epoch"));
            println!(
                "threads={threads:<2} {name:<12} no_ctx {plain_ms:>9.3} ms  \
                 ctx {ctx_ms:>9.3} ms ({:+.1}%)  \
                 epoch {epoch_ms:>9.3} ms ({:+.1}%)",
                (ctx_ms / plain_ms - 1.0) * 100.0,
                (epoch_ms / plain_ms - 1.0) * 100.0
            );
        }
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
