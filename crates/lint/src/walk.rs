//! Workspace file discovery: which `.rs` files count as *library code*.
//!
//! `--workspace` lints every `src/` tree in the repo — `src/` at the root
//! and `crates/*/src/` (including nested `src/bin/`, `src/experiments/`,
//! …) — and deliberately skips:
//!
//! - `crates/shims/`: vendored stand-ins for external crates (`rand`,
//!   `parking_lot`, `criterion`); their job is to mirror a foreign API
//!   surface, poison-swallowing `lock()` included, not to follow this
//!   repo's conventions;
//! - `tests/`, `benches/`, `examples/`: the invariants are about library
//!   code — a test may unwrap freely (and in-`src` `#[cfg(test)]` blocks
//!   are excluded token-wise by [`crate::rules`]);
//! - `target/` and anything else outside a `src/` tree.

use std::path::{Path, PathBuf};

/// All library `.rs` files under `root`, workspace-relative, sorted.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            if krate.file_name().is_some_and(|n| n == "shims") {
                continue;
            }
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
