//! On-disk column store — the "DBMS X" storage model.
//!
//! Load writes one binary segment per column (the same tagged encoding as
//! the row store, minus the per-row framing: a column segment is a
//! concatenation of encoded values). Queries read only the segments they
//! need — the loaded-storage analogue of selective tokenizing/parsing, which
//! is exactly why a column store wins queries and loses loading time in the
//! friendly race.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use nodb_rawcsv::Datum;

use crate::error::{StorageError, StorageResult};
use crate::tuple::{encode_row, TupleReader};

/// A loaded columnar table: per-column segment files plus row count.
pub struct ColumnStore {
    dir: PathBuf,
    ncols: usize,
    nrows: u64,
}

/// Writer used during load.
pub struct ColumnStoreWriter {
    dir: PathBuf,
    writers: Vec<BufWriter<File>>,
    nrows: u64,
    bytes_written: u64,
    scratch: Vec<u8>,
}

impl ColumnStore {
    /// Create a column store under `dir` (a directory; created if absent).
    pub fn create(dir: impl AsRef<Path>, ncols: usize) -> StorageResult<ColumnStoreWriter> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("mkdir {}", dir.display()), e))?;
        let writers = (0..ncols)
            .map(|c| {
                let p = dir.join(format!("col{c}.bin"));
                File::create(&p)
                    .map(BufWriter::new)
                    .map_err(|e| StorageError::io(format!("create {}", p.display()), e))
            })
            .collect::<StorageResult<Vec<_>>>()?;
        Ok(ColumnStoreWriter {
            dir,
            writers,
            nrows: 0,
            bytes_written: 0,
            scratch: Vec::new(),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> u64 {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Read the full segment of column `c` into memory and decode it.
    pub fn read_column(&self, c: usize) -> StorageResult<Vec<Datum>> {
        let p = self.dir.join(format!("col{c}.bin"));
        let mut bytes = Vec::new();
        File::open(&p)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StorageError::io(format!("read {}", p.display()), e))?;
        let mut out = Vec::with_capacity(self.nrows as usize);
        let mut r = TupleReader::new(&bytes);
        while let Some(d) = r.next_value() {
            out.push(d);
        }
        Ok(out)
    }
}

impl ColumnStoreWriter {
    /// Append one row (one value per column).
    pub fn append(&mut self, row: &[Datum]) -> StorageResult<()> {
        debug_assert_eq!(row.len(), self.writers.len());
        for (c, d) in row.iter().enumerate() {
            self.scratch.clear();
            encode_row(std::slice::from_ref(d), &mut self.scratch);
            self.writers[c]
                .write_all(&self.scratch)
                .map_err(|e| StorageError::io(format!("write col{c}"), e))?;
            self.bytes_written += self.scratch.len() as u64;
        }
        self.nrows += 1;
        Ok(())
    }

    /// Finish and reopen for reading; returns the store and bytes written.
    pub fn finish(mut self) -> StorageResult<(ColumnStore, u64)> {
        for (c, w) in self.writers.iter_mut().enumerate() {
            w.flush()
                .map_err(|e| StorageError::io(format!("flush col{c}"), e))?;
        }
        let ncols = self.writers.len();
        Ok((
            ColumnStore {
                dir: self.dir,
                ncols,
                nrows: self.nrows,
            },
            self.bytes_written,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nodb_col_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn write_read_columns() {
        let dir = tmp_dir("rw");
        let mut w = ColumnStore::create(&dir, 2).unwrap();
        for i in 0..100i64 {
            w.append(&[Datum::Int(i), Datum::from(format!("s{i}"))])
                .unwrap();
        }
        let (store, bytes) = w.finish().unwrap();
        assert!(bytes > 0);
        assert_eq!(store.nrows(), 100);
        let c0 = store.read_column(0).unwrap();
        assert_eq!(c0.len(), 100);
        assert_eq!(c0[42], Datum::Int(42));
        let c1 = store.read_column(1).unwrap();
        assert_eq!(c1[7], Datum::from("s7"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn nulls_round_trip() {
        let dir = tmp_dir("null");
        let mut w = ColumnStore::create(&dir, 1).unwrap();
        w.append(&[Datum::Null]).unwrap();
        w.append(&[Datum::Int(1)]).unwrap();
        let (store, _) = w.finish().unwrap();
        assert_eq!(
            store.read_column(0).unwrap(),
            vec![Datum::Null, Datum::Int(1)]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
