//! Column types and table schemas.
//!
//! A [`Schema`] is the only piece of up-front information NoDB requires: the
//! shape of the raw file. It can be written by hand, produced by the
//! [`crate::generator`], or inferred from a sample of the file by
//! [`crate::infer`].

use std::fmt;

/// The type of a single CSV attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (arbitrary bytes are lossily accepted).
    Str,
    /// Boolean (`true/false`, `t/f`, `1/0`, case-insensitive).
    Bool,
}

impl ColumnType {
    /// Static name used in error messages and plan displays.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Bool => "bool",
        }
    }

    /// Approximate in-memory width of a parsed value of this type, used for
    /// cache budget accounting. Strings account for their actual length at
    /// insertion time; this is the per-slot overhead.
    pub fn fixed_width(self) -> usize {
        match self {
            ColumnType::Int | ColumnType::Float => 8,
            ColumnType::Bool => 1,
            // Pointer + length for the string payload slot.
            ColumnType::Str => 16,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Definition of a single column: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name as referenced in queries. Case-sensitive.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered set of column definitions describing one raw file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    ///
    /// # Panics
    /// Panics if two columns share a name; schemas are small and built once,
    /// so this is a programming error rather than a runtime condition.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Schema { columns }
    }

    /// A schema of `n` columns named `c0..c{n-1}`, all of the same type.
    /// This is the shape the demo's synthetic generator produces.
    pub fn uniform(n: usize, ty: ColumnType) -> Self {
        Schema::new(
            (0..n)
                .map(|i| ColumnDef::new(format!("c{i}"), ty))
                .collect(),
        )
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column definitions in file order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Resolve a column name to its index, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Type of the column at `idx`.
    pub fn ty(&self, idx: usize) -> ColumnType {
        self.columns[idx].ty
    }

    /// Iterator over `(index, &ColumnDef)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ColumnDef)> {
        self.columns.iter().enumerate()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schema_names_and_types() {
        let s = Schema::uniform(3, ColumnType::Int);
        assert_eq!(s.len(), 3);
        assert_eq!(s.column(0).name, "c0");
        assert_eq!(s.column(2).name, "c2");
        assert_eq!(s.ty(1), ColumnType::Int);
    }

    #[test]
    fn index_of_resolves_names() {
        let s = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("name", ColumnType::Str),
        ]);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        let _ = Schema::new(vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("a", ColumnType::Str),
        ]);
    }

    #[test]
    fn display_formats_schema() {
        let s = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int),
            ColumnDef::new("v", ColumnType::Float),
        ]);
        assert_eq!(s.to_string(), "(id int, v float)");
    }

    #[test]
    fn fixed_widths_are_sane() {
        assert_eq!(ColumnType::Int.fixed_width(), 8);
        assert_eq!(ColumnType::Bool.fixed_width(), 1);
        assert!(ColumnType::Str.fixed_width() >= 16);
    }
}
