//! Configuration knobs — the demo's interactive parameter panel.
//!
//! "The user can enable or disable the NoDB components of PostgresRaw and
//! specify the amount of storage space which is devoted to internal indexes
//! and caches" (§1). Every switch the demo exposes is a field here, plus the
//! ablation flags DESIGN.md calls out.

use nodb_posmap::CombinationTrigger;

/// Smallest accepted [`NoDbConfig::io_block_size`]. Values below one page
/// degenerate (per-line syscalls) or outright break the scanner's tail-read
/// stepping; [`NoDbConfig::validated`] clamps instead of trusting callers.
pub const MIN_IO_BLOCK_SIZE: usize = 4096;

/// Largest accepted [`NoDbConfig::io_block_size`] (256 MiB): past this a
/// typo'd budget would make every scanner buffer a sizeable fraction of
/// RAM for no throughput gain.
pub const MAX_IO_BLOCK_SIZE: usize = 256 << 20;

/// Largest accepted [`NoDbConfig::io_readahead_blocks`]: each in-flight
/// block pins `io_block_size` bytes per scanner, so depth × block × workers
/// is real memory; past a handful of blocks the pipeline is already never
/// empty and extra depth only buys footprint.
pub const MAX_READAHEAD_BLOCKS: usize = 64;

/// What a scan does with a row whose bytes fail to parse as the schema's
/// type for a requested attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseErrorPolicy {
    /// Abort the query with the parse error (the historical behavior).
    #[default]
    Strict,
    /// Quarantine the malformed cell: it becomes a NULL tombstone (exactly
    /// how a short row's absent attribute already materializes), the row
    /// keeps its position and row number, and a capped sample of (row, byte
    /// offset, attribute) triples is surfaced through
    /// `ScanTelemetry`/`QueryReport`. Because the tombstone is what gets
    /// cached and observed by statistics, cold scans, warm re-runs and
    /// cache-served scans of the same file stay byte-identical.
    Permissive,
}

/// Full configuration of a [`crate::NoDb`] instance.
#[derive(Debug, Clone, Copy)]
pub struct NoDbConfig {
    /// Enable the adaptive positional map (§3.1).
    pub enable_positional_map: bool,
    /// Enable the adaptive binary cache (§3.2).
    pub enable_cache: bool,
    /// Enable on-the-fly statistics (§3.3).
    pub enable_stats: bool,
    /// Byte budget for the positional map's chunks.
    pub map_budget_bytes: usize,
    /// Byte budget for the cache.
    pub cache_budget_bytes: usize,
    /// When to index a new attribute combination (paper default:
    /// all-requested-attributes-in-different-chunks).
    pub combination_trigger: CombinationTrigger,
    /// Selective tokenizing (§3): abort each tuple once the last needed
    /// attribute is located. Disabling reverts to full-tuple tokenizing —
    /// the KNOBS ablation.
    pub selective_tokenizing: bool,
    /// Ablation: cache every parsed attribute of the tuple instead of only
    /// those the query requested. The paper explicitly rejects this
    /// ("caching does not force additional data to be parsed"); turning it
    /// on shows why.
    pub cache_force_full_parse: bool,
    /// Observe every `stats_sample_every`-th row in the statistics
    /// accumulators (1 = every row).
    pub stats_sample_every: u64,
    /// Block size for sequential raw-file reads. Clamped to
    /// `[MIN_IO_BLOCK_SIZE, MAX_IO_BLOCK_SIZE]` by [`Self::validated`] —
    /// a zero/tiny value would degenerate to per-line syscalls.
    pub io_block_size: usize,
    /// Read-ahead depth for raw-file scans: how many `io_block_size` blocks
    /// a scanner's prefetch helper keeps in flight (`nodb_rawcsv::reader::
    /// ReadaheadBlocks`), overlapping disk reads with tokenize/parse CPU.
    /// `0` disables the helper and reads synchronously on the scanning
    /// thread (`SyncBlocks` — byte-for-byte the pre-readahead behavior).
    /// Every depth produces byte-identical positional map, cache and
    /// statistics; only the I/O stall time changes. Clamped to at most
    /// [`MAX_READAHEAD_BLOCKS`] by [`Self::validated`].
    pub io_readahead_blocks: usize,
    /// Best-effort core pinning: pin each parallel-scan worker (and
    /// pre-count counter) to a distinct CPU core via `sched_setaffinity`
    /// on Linux; a no-op elsewhere and on kernels that refuse. Off by
    /// default — pinning helps dedicated hosts (stable caches, no
    /// migration) but hurts when several queries share the machine, since
    /// every scan pins to the same low-numbered cores.
    pub pin_cores: bool,
    /// Collect per-phase execution breakdowns (Fig 3). Costs a few ns per
    /// row; disable for pure-throughput microbenchmarks.
    pub detailed_timing: bool,
    /// Check the raw file for appends/replacement before every query (§4.2
    /// *Updates*). Also arms the full source-epoch machinery: the torn-row
    /// fence (scans trust only bytes up to the last newline observed at
    /// epoch capture), mid-scan truncation detection, and post-scan epoch
    /// re-validation before any adaptive-state merge (see `nodb_core::epoch`).
    pub detect_updates: bool,
    /// How many times a facade query transparently retries after
    /// `EngineError::SourceChanged` (the backing file was truncated or
    /// rewritten mid-scan). Each retry quarantines the table's adaptive
    /// state and rescans cold against the fresh epoch, so under the default
    /// of `1` a single concurrent rewrite is invisible to callers; only a
    /// file mutating faster than it can be scanned surfaces the error.
    /// `0` disables the retry (the error surfaces immediately). Retries are
    /// counted in `QueryReport::source_changed`.
    pub source_change_retries: u32,
    /// Number of scan worker threads for streaming raw scans. `0` means
    /// auto-detect (`std::thread::available_parallelism`). `1` forces the
    /// single-threaded scan path — byte-for-byte the pre-parallel code, kept
    /// for fallback and A/B benchmarking. Values `>= 2` split the file into
    /// line-aligned partitions scanned concurrently; post-scan positional
    /// map, cache and statistics are identical to a sequential scan (see
    /// `rawscan`'s module docs for the merge invariants).
    pub scan_threads: usize,
    /// Two-phase cold scans: when a cold (byte-partitioned) parallel scan
    /// could reuse existing state — partial cache coverage, or positional-map
    /// chunks surviving an append — run a cheap SWAR newline pre-count over
    /// the partitions first to establish every partition's global row base.
    /// Workers then consult the cache and map mid-partition and skip
    /// tokenizing rows that are already cached; partitions fully covered by
    /// the cache never open the file at all. Boundary counts are memoized in
    /// the positional map (`LineCountMemo`), so repeated cold scans skip the
    /// counting pass. Disabled, cold scans resolve everything from raw
    /// bytes, as before. A first-ever scan (nothing to reuse) never pays the
    /// pre-count either way.
    pub cold_precount: bool,
    /// Vectorized warm-path execution: cache-resident scans export typed
    /// column segments straight into the engine (no per-cell `Datum`
    /// boxing), pushed predicates run as columnar kernels producing a
    /// selection vector, and the engine's aggregate/projection operators
    /// use columnar kernels over typed batches. Off, every path evaluates
    /// row-at-a-time exactly as before — the ablation arm of
    /// `BENCH_warm_path.json`. Results are byte-identical either way
    /// (property-tested).
    pub vectorized_exec: bool,
    /// Work-stealing granularity for parallel scans: each scan splits its
    /// work into `scan_threads * steal_slices_per_thread` partition slices
    /// instead of one partition per thread. Every worker owns a contiguous
    /// run of slices (adjacent file regions — NUMA/readahead friendly) and,
    /// once its run drains, steals slices from the most-loaded peer, so
    /// skewed line widths no longer leave workers idle. `0` or `1` restores
    /// static equal-size partitioning (stealing off). The merge is by slice
    /// order, so the post-scan state is identical for every steal
    /// interleaving.
    pub steal_slices_per_thread: usize,
    /// Per-query deadline in milliseconds for facade queries (`0` = none).
    /// An exceeded deadline unwinds the scan cooperatively with
    /// `EngineError::DeadlineExceeded`; adaptive state built before the
    /// stop is still installed, so the retry starts warmer. Callers wanting
    /// per-query control use `NoDb::query_with_ctx` instead.
    pub query_timeout_ms: u64,
    /// Bounded retry for *transient* raw-file read errors (`EIO`/`EAGAIN`,
    /// interrupted/timed-out reads): how many times a failed block refill
    /// is re-issued before the error aborts the scan. `0` disables retry.
    pub io_retry_attempts: u32,
    /// Base backoff before the first retry, doubling per attempt.
    pub io_retry_backoff_ms: u64,
    /// Chaos knob: non-zero seeds a deterministic fault injector
    /// (`FaultyBlocks`) under every scan's reads — transient `EIO`s, short
    /// reads and injected latency, recoverable by the retry layer. Tests
    /// and CI only; `0` (the default) injects nothing. The env knob
    /// `NODB_TEST_FAULTS` overlays this for whole-suite chaos runs.
    pub io_fault_seed: u64,
    /// Inject a fault on roughly one refill in this many (when
    /// `io_fault_seed` is set). Clamped to at least 1 by
    /// [`Self::validated`].
    pub io_fault_one_in: u32,
    /// What to do with rows whose bytes fail to parse (see
    /// [`ParseErrorPolicy`]).
    pub parse_errors: ParseErrorPolicy,
    /// Snapshot persistence: keep each table's adaptive state (positional
    /// map, cache, statistics) in a crash-safe sidecar file next to the raw
    /// data (`foo.csv.nodb-snap`), written behind queries whenever the
    /// state has grown and restored on registration so restarts resume
    /// warm. The sidecar is a hint, never an authority: any corruption,
    /// truncation, version skew or file-fingerprint mismatch degrades the
    /// table to cold — results are byte-identical with the knob on or off.
    /// Off by default (an in-situ engine writes nothing unless asked).
    pub snapshot_persistence: bool,
}

impl Default for NoDbConfig {
    fn default() -> Self {
        NoDbConfig {
            enable_positional_map: true,
            enable_cache: true,
            enable_stats: true,
            map_budget_bytes: 256 << 20,
            cache_budget_bytes: 1 << 30,
            combination_trigger: CombinationTrigger::AllDifferentChunks,
            selective_tokenizing: true,
            cache_force_full_parse: false,
            stats_sample_every: 1,
            io_block_size: 1 << 20,
            io_readahead_blocks: 2,
            pin_cores: false,
            detailed_timing: true,
            detect_updates: true,
            source_change_retries: 1,
            scan_threads: 0,
            cold_precount: true,
            vectorized_exec: true,
            steal_slices_per_thread: 4,
            query_timeout_ms: 0,
            io_retry_attempts: 2,
            io_retry_backoff_ms: 2,
            io_fault_seed: 0,
            io_fault_one_in: 100,
            parse_errors: ParseErrorPolicy::Strict,
            snapshot_persistence: false,
        }
    }
}

impl NoDbConfig {
    /// The paper's *PostgresRaw PM+C* configuration (everything on).
    pub fn pm_c() -> Self {
        NoDbConfig::default()
    }

    /// The paper's *Baseline* configuration: "does not use any of the
    /// aforementioned techniques and constitutes the naive way of accessing
    /// external files". Every query re-tokenizes and re-parses everything;
    /// no state is kept between queries.
    pub fn baseline() -> Self {
        NoDbConfig {
            enable_positional_map: false,
            enable_cache: false,
            enable_stats: false,
            selective_tokenizing: false,
            ..NoDbConfig::default()
        }
    }

    /// Positional map only (the *PostgresRaw PM* variant).
    pub fn pm_only() -> Self {
        NoDbConfig {
            enable_cache: false,
            ..NoDbConfig::default()
        }
    }

    /// Cache only (the *PostgresRaw C* variant).
    pub fn cache_only() -> Self {
        NoDbConfig {
            enable_positional_map: false,
            ..NoDbConfig::default()
        }
    }

    /// Clamp out-of-range I/O knobs instead of letting them panic or
    /// degenerate downstream: `io_block_size` into
    /// `[MIN_IO_BLOCK_SIZE, MAX_IO_BLOCK_SIZE]` (a zero/tiny block would
    /// turn every scan into per-line syscalls; the scanner used to clamp
    /// silently, now the config owns the rule), `io_readahead_blocks` to at
    /// most [`MAX_READAHEAD_BLOCKS`] (each in-flight block pins a block of
    /// memory per scanner). Applied by `NoDb::new`, so every facade query
    /// runs on a validated snapshot; direct `RawScanSource` users can call
    /// it themselves.
    pub fn validated(mut self) -> Self {
        self.io_block_size = self
            .io_block_size
            .clamp(MIN_IO_BLOCK_SIZE, MAX_IO_BLOCK_SIZE);
        self.io_readahead_blocks = self.io_readahead_blocks.min(MAX_READAHEAD_BLOCKS);
        self.io_fault_one_in = self.io_fault_one_in.max(1);
        self
    }

    /// The I/O resilience profile every scan of this config runs under:
    /// retry knobs straight from the config, fault injection only when a
    /// seed is set — by the config itself or by the `NODB_TEST_FAULTS` env
    /// overlay (whole-suite chaos runs; config wins when both are set).
    pub fn io_profile(&self) -> nodb_rawcsv::IoProfile {
        let mut seed = self.io_fault_seed;
        let mut one_in = self.io_fault_one_in.max(1);
        if seed == 0 {
            if let Ok(env_seed) = std::env::var("NODB_TEST_FAULTS") {
                if let Ok(parsed) = env_seed.trim().parse::<u64>() {
                    if parsed != 0 {
                        seed = parsed;
                        one_in = 100; // the acceptance criterion's 1%
                    }
                }
            }
        }
        nodb_rawcsv::IoProfile {
            retry_attempts: self.io_retry_attempts,
            retry_backoff_ms: self.io_retry_backoff_ms,
            faults: (seed != 0).then_some(nodb_rawcsv::FaultPlan {
                seed,
                one_in,
                latency_us: 50,
            }),
        }
    }

    /// Resolved scan worker count: `scan_threads`, with `0` mapped to the
    /// machine's available parallelism.
    pub fn effective_scan_threads(&self) -> usize {
        match self.scan_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Total partition slices a parallel scan aims for: the resolved thread
    /// count times the stealing granularity (capped to keep per-slice setup
    /// overhead bounded on absurd settings). With stealing off this equals
    /// the thread count — the pre-stealing static split.
    pub fn scan_slice_target(&self) -> usize {
        let threads = self.effective_scan_threads();
        threads
            .saturating_mul(self.steal_slices_per_thread.max(1))
            .min(4096)
    }

    /// Start a builder from the paper defaults (PM+C). `build()` folds in
    /// [`Self::validated`], so a built config is always in-range.
    pub fn builder() -> NoDbConfigBuilder {
        NoDbConfigBuilder {
            cfg: NoDbConfig::default(),
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match (self.enable_positional_map, self.enable_cache) {
            (true, true) => "PostgresRaw (PM+C)",
            (true, false) => "PostgresRaw (PM)",
            (false, true) => "PostgresRaw (C)",
            (false, false) => {
                if self.selective_tokenizing {
                    "External files (selective)"
                } else {
                    "Baseline (external files)"
                }
            }
        }
    }
}

/// Fluent construction of a [`NoDbConfig`] with validation folded in:
/// `NoDbConfig::builder().scan_threads(4).build()` yields a config that
/// already passed [`NoDbConfig::validated`], so no caller can forget the
/// clamp. Struct-literal construction of `NoDbConfig` keeps working (the
/// fields stay public for the experiment harness); the builder is the
/// recommended path for application code and the server.
#[derive(Debug, Clone, Copy)]
pub struct NoDbConfigBuilder {
    cfg: NoDbConfig,
}

impl NoDbConfigBuilder {
    /// Start from an existing config instead of the defaults.
    pub fn from_config(cfg: NoDbConfig) -> Self {
        NoDbConfigBuilder { cfg }
    }

    /// Enable/disable the adaptive positional map (§3.1).
    pub fn positional_map(mut self, on: bool) -> Self {
        self.cfg.enable_positional_map = on;
        self
    }

    /// Enable/disable the adaptive binary cache (§3.2).
    pub fn cache(mut self, on: bool) -> Self {
        self.cfg.enable_cache = on;
        self
    }

    /// Enable/disable on-the-fly statistics (§3.3).
    pub fn stats(mut self, on: bool) -> Self {
        self.cfg.enable_stats = on;
        self
    }

    /// Positional-map byte budget.
    pub fn map_budget_bytes(mut self, bytes: usize) -> Self {
        self.cfg.map_budget_bytes = bytes;
        self
    }

    /// Cache byte budget.
    pub fn cache_budget_bytes(mut self, bytes: usize) -> Self {
        self.cfg.cache_budget_bytes = bytes;
        self
    }

    /// Scan worker threads (`0` = auto-detect).
    pub fn scan_threads(mut self, n: usize) -> Self {
        self.cfg.scan_threads = n;
        self
    }

    /// Raw-file read block size (clamped on `build`).
    pub fn io_block_size(mut self, bytes: usize) -> Self {
        self.cfg.io_block_size = bytes;
        self
    }

    /// Read-ahead depth in blocks (clamped on `build`).
    pub fn io_readahead_blocks(mut self, blocks: usize) -> Self {
        self.cfg.io_readahead_blocks = blocks;
        self
    }

    /// Per-query deadline in milliseconds (`0` = none).
    pub fn query_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.query_timeout_ms = ms;
        self
    }

    /// Vectorized warm-path execution on/off.
    pub fn vectorized_exec(mut self, on: bool) -> Self {
        self.cfg.vectorized_exec = on;
        self
    }

    /// Pre-query append/replacement detection on/off.
    pub fn detect_updates(mut self, on: bool) -> Self {
        self.cfg.detect_updates = on;
        self
    }

    /// Transparent cold-rescan retries after a mid-scan source mutation
    /// (`0` = surface `SourceChanged` immediately).
    pub fn source_change_retries(mut self, n: u32) -> Self {
        self.cfg.source_change_retries = n;
        self
    }

    /// Malformed-row policy.
    pub fn parse_errors(mut self, policy: ParseErrorPolicy) -> Self {
        self.cfg.parse_errors = policy;
        self
    }

    /// Sidecar snapshot persistence on/off (warm restarts).
    pub fn snapshot_persistence(mut self, on: bool) -> Self {
        self.cfg.snapshot_persistence = on;
        self
    }

    /// Finish: validation ([`NoDbConfig::validated`]) is applied here, so
    /// built configs are always in-range.
    pub fn build(self) -> NoDbConfig {
        self.cfg.validated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_folds_in_validation() {
        let cfg = NoDbConfig::builder()
            .scan_threads(4)
            .io_block_size(1) // out of range: clamped by build()
            .io_readahead_blocks(10_000)
            .query_timeout_ms(250)
            .build();
        assert_eq!(cfg.scan_threads, 4);
        assert_eq!(cfg.io_block_size, MIN_IO_BLOCK_SIZE);
        assert_eq!(cfg.io_readahead_blocks, MAX_READAHEAD_BLOCKS);
        assert_eq!(cfg.query_timeout_ms, 250);
        let ablation = NoDbConfigBuilder::from_config(NoDbConfig::baseline())
            .stats(true)
            .build();
        assert!(ablation.enable_stats);
        assert!(!ablation.enable_positional_map, "base preset preserved");
    }

    #[test]
    fn presets_match_paper_variants() {
        assert_eq!(NoDbConfig::pm_c().label(), "PostgresRaw (PM+C)");
        assert_eq!(NoDbConfig::baseline().label(), "Baseline (external files)");
        assert!(!NoDbConfig::baseline().enable_positional_map);
        assert!(!NoDbConfig::baseline().selective_tokenizing);
        assert!(NoDbConfig::pm_only().enable_positional_map);
        assert!(!NoDbConfig::pm_only().enable_cache);
    }

    #[test]
    fn scan_threads_zero_means_auto() {
        let cfg = NoDbConfig::default();
        assert_eq!(cfg.scan_threads, 0);
        assert!(cfg.effective_scan_threads() >= 1);
        let one = NoDbConfig {
            scan_threads: 1,
            ..NoDbConfig::default()
        };
        assert_eq!(one.effective_scan_threads(), 1);
        let four = NoDbConfig {
            scan_threads: 4,
            ..NoDbConfig::default()
        };
        assert_eq!(four.effective_scan_threads(), 4);
    }

    #[test]
    fn validated_clamps_io_knobs() {
        let cfg = NoDbConfig {
            io_block_size: 0,
            io_readahead_blocks: 10_000,
            ..NoDbConfig::default()
        }
        .validated();
        assert_eq!(
            cfg.io_block_size, MIN_IO_BLOCK_SIZE,
            "zero block clamped up"
        );
        assert_eq!(
            cfg.io_readahead_blocks, MAX_READAHEAD_BLOCKS,
            "depth capped"
        );
        let huge = NoDbConfig {
            io_block_size: usize::MAX,
            ..NoDbConfig::default()
        }
        .validated();
        assert_eq!(
            huge.io_block_size, MAX_IO_BLOCK_SIZE,
            "absurd block clamped down"
        );
        let normal = NoDbConfig::default().validated();
        assert_eq!(normal.io_block_size, 1 << 20, "in-range values untouched");
        assert_eq!(normal.io_readahead_blocks, 2, "default double-buffering");
        assert!(!normal.pin_cores, "pinning is opt-in");
    }

    #[test]
    fn slice_target_scales_with_steal_granularity() {
        let cfg = NoDbConfig {
            scan_threads: 4,
            steal_slices_per_thread: 4,
            ..NoDbConfig::default()
        };
        assert_eq!(cfg.scan_slice_target(), 16);
        let off = NoDbConfig {
            scan_threads: 4,
            steal_slices_per_thread: 0,
            ..NoDbConfig::default()
        };
        assert_eq!(off.scan_slice_target(), 4, "0 restores static split");
        let capped = NoDbConfig {
            scan_threads: 1024,
            steal_slices_per_thread: 1024,
            ..NoDbConfig::default()
        };
        assert_eq!(capped.scan_slice_target(), 4096, "slice cap");
        assert!(
            NoDbConfig::default().cold_precount,
            "precount on by default"
        );
    }
}
