//! Per-file adaptive state: schema, positional map, cache, statistics,
//! update fingerprint.

use std::path::{Path, PathBuf};

use nodb_posmap::{MapPolicy, PositionalMap};
use nodb_rawcache::{CachePolicy, RawCache};
use nodb_rawcsv::reader::{fnv1a, FileChange};
use nodb_rawcsv::tokenizer::TokenizerConfig;
use nodb_rawcsv::{RawCsvError, Schema};
use nodb_snapshot::TableSnapshot;
use nodb_stats::TableStats;

use crate::config::NoDbConfig;
use crate::epoch::{EpochChange, SourceEpoch};
use crate::metrics::{ChunkInfo, SystemSnapshot};

/// What restoring a sidecar snapshot did to a freshly registered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// No sidecar file exists — a genuinely fresh table.
    NoSidecar,
    /// The snapshot was valid and matched the file (exactly, or as the
    /// prefix of an appended file); adaptive state was installed.
    Restored {
        /// True when the file grew since capture: the prefix state was
        /// kept and the tail is left for the next scan to discover.
        appended: bool,
    },
    /// The sidecar was unusable (corrupt, truncated, version-skewed, or
    /// the file was replaced since capture); the table starts cold. The
    /// string says why, for telemetry and logs — never for control flow.
    Rejected(String),
}

/// One registered raw file and every adaptive structure hanging off it.
///
/// Nothing here is built at registration time: the map, cache and statistics
/// all start empty and grow exclusively as side effects of queries — the
/// NoDB contract.
pub struct RawTable {
    pub(crate) path: PathBuf,
    pub(crate) schema: Schema,
    pub(crate) has_header: bool,
    pub(crate) tokenizer: TokenizerConfig,
    pub(crate) map: PositionalMap,
    pub(crate) cache: RawCache,
    pub(crate) stats: TableStats,
    /// The source epoch every adaptive structure is keyed to: length,
    /// mtime, sampled head/tail hashes, and the torn-row fence. Re-captured
    /// (and the generation bumped) whenever update detection reconciles a
    /// change; only mutated under the table's write lock.
    pub(crate) epoch: SourceEpoch,
    /// Exact data-row count once any scan has completed.
    pub(crate) row_count: Option<u64>,
    /// Per-attribute access counts (usage panel of Fig 2).
    pub(crate) attr_access: Vec<u64>,
    /// File-state generation, bumped whenever update detection reconciles an
    /// append or replacement. A concurrent query snapshots the generation
    /// while planning under the table's write lock; if it differs when the
    /// query later re-acquires the lock to scan or to merge side effects,
    /// the staged state describes a dead file and is discarded (the query
    /// retries against the new state instead of corrupting it).
    pub(crate) generation: u64,
    /// Progress signature of the last snapshot written (or restored), so
    /// write-behind skips queries that grew nothing. `0` = never saved.
    pub(crate) last_snapshot_sig: u64,
}

impl RawTable {
    /// Register `path` with the given schema. Cost: one `stat` + 4 KiB head
    /// read for the update fingerprint — *no* data touch.
    pub fn register(
        path: impl AsRef<Path>,
        schema: Schema,
        has_header: bool,
        config: &NoDbConfig,
    ) -> Result<Self, RawCsvError> {
        Self::register_with_tokenizer(path, schema, has_header, config, TokenizerConfig::default())
    }

    /// [`Self::register`] with an explicit tokenizer (non-comma delimiter,
    /// quoted fields).
    pub fn register_with_tokenizer(
        path: impl AsRef<Path>,
        schema: Schema,
        has_header: bool,
        config: &NoDbConfig,
        tokenizer: TokenizerConfig,
    ) -> Result<Self, RawCsvError> {
        let path = path.as_ref().to_path_buf();
        let epoch = SourceEpoch::capture(&path)?;
        let nattrs = schema.len();
        Ok(RawTable {
            path,
            schema,
            has_header,
            tokenizer,
            map: PositionalMap::new(MapPolicy {
                budget_bytes: config.map_budget_bytes,
                trigger: config.combination_trigger,
            }),
            cache: RawCache::new(CachePolicy::with_budget(config.cache_budget_bytes)),
            stats: TableStats::new(config.stats_sample_every),
            epoch,
            row_count: None,
            attr_access: vec![0; nattrs],
            generation: 0,
            last_snapshot_sig: 0,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The raw file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read access to the positional map (harness / tests).
    pub fn map(&self) -> &PositionalMap {
        &self.map
    }

    /// Read access to the binary cache (harness / tests).
    pub fn cache(&self) -> &RawCache {
        &self.cache
    }

    /// Read access to the statistics registry (harness / tests).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The current source epoch (see [`crate::epoch`]).
    pub fn epoch(&self) -> &SourceEpoch {
        &self.epoch
    }

    /// Probe the file and reconcile adaptive state with any change (§4.2
    /// *Updates*): appends keep all prefix state and replay from the old
    /// torn-row fence; truncation or rewrite quarantines everything.
    pub fn check_updates(&mut self) -> Result<EpochChange, RawCsvError> {
        let change = self.epoch.classify(&self.path)?;
        match change {
            EpochChange::Unchanged => {}
            EpochChange::Appended { .. } => {
                self.map.note_appended();
                self.stats.note_appended();
                self.row_count = None;
                self.generation += 1;
                self.epoch = SourceEpoch::capture(&self.path)?;
            }
            EpochChange::Truncated { .. } | EpochChange::Rewritten => {
                self.quarantine()?;
            }
        }
        Ok(change)
    }

    /// Epoch quarantine: the backing file was truncated, rewritten, or
    /// replaced, so every adaptive structure describes bytes of a dead
    /// epoch. Drops the map (chunks, row index, line-count memo), the
    /// cache, and the statistics atomically (the caller holds the table's
    /// write lock), bumps the generation so staged concurrent state is
    /// discarded at its merge fence, resets the snapshot write-behind
    /// signature, and re-captures the epoch from the live file.
    ///
    /// The state drop happens *before* the re-capture, so even when the
    /// file has meanwhile vanished (the error path) no stale state
    /// survives — the next successful probe starts genuinely cold.
    pub(crate) fn quarantine(&mut self) -> Result<(), RawCsvError> {
        self.map.quarantine();
        self.cache.quarantine();
        self.stats.quarantine();
        self.row_count = None;
        self.last_snapshot_sig = 0;
        self.generation += 1;
        self.epoch = SourceEpoch::capture(&self.path)?;
        Ok(())
    }

    /// Try to restore adaptive state from the table's sidecar snapshot.
    /// Called right after registration (before any query): any failure —
    /// I/O, corruption, version skew, replaced file — leaves the table
    /// exactly as cold as it already was. Restoration honors the config's
    /// component switches (a `baseline()` instance restores nothing) and
    /// only adopts statistics captured under the same sampling stride,
    /// since a restored reservoir must continue the same sample stream.
    pub fn try_restore_snapshot(&mut self, config: &NoDbConfig) -> RestoreOutcome {
        let snap = match nodb_snapshot::load_snapshot(
            &self.path,
            config.io_block_size,
            config.io_profile(),
        ) {
            Ok(Some(s)) => s,
            Ok(None) => return RestoreOutcome::NoSidecar,
            Err(e) => return RestoreOutcome::Rejected(e.to_string()),
        };
        // Compare the *saved* fingerprint against the live file. Replaced
        // (shrunk, head changed, or same-length different-mtime) means the
        // snapshot describes dead data: reject wholesale.
        let change = match snap.meta.classify_change(&self.path) {
            Ok(c) => c,
            Err(e) => return RestoreOutcome::Rejected(format!("fingerprint probe: {e}")),
        };
        if change == FileChange::Replaced {
            return RestoreOutcome::Rejected("file replaced since capture".to_string());
        }
        // Mid-mutation fence: decoding the sidecar took time, and the
        // decision above compared the *sidecar's* fingerprint against a
        // moving target. Re-validate the epoch captured at registration;
        // any drift means an external writer is active right now, so the
        // snapshot's offsets cannot be trusted to describe the bytes the
        // first query will read. Resync the epoch and start cold instead.
        match self.epoch.classify(&self.path) {
            Ok(EpochChange::Unchanged) => {}
            _ => {
                let _ = self.check_updates();
                return RestoreOutcome::Rejected("file mutated during restore".to_string());
            }
        }
        if config.enable_positional_map {
            snap.map.install_into(&mut self.map);
        }
        if config.enable_cache {
            for (attr, col) in snap.columns {
                if attr < self.schema.len() {
                    self.cache.install_restored(attr, col);
                }
            }
        }
        if config.enable_stats && snap.stats.sample_every == config.stats_sample_every {
            if let Some(stats) = TableStats::from_state(snap.stats) {
                self.stats = stats;
            }
        }
        let appended = matches!(change, FileChange::Appended { .. });
        if appended {
            // Mirror `check_updates`: keep prefix state, re-learn the tail.
            self.map.note_appended();
            self.stats.note_appended();
            self.row_count = None;
        } else {
            self.row_count = snap.row_count;
        }
        // Remember what we restored, so the first query only re-writes the
        // sidecar if it actually grew something.
        self.last_snapshot_sig = self.snapshot_signature();
        RestoreOutcome::Restored { appended }
    }

    /// Capture this table's full adaptive state for persistence. The caller
    /// holds (at least) the table's read lock, which is what keeps the
    /// map/cache/statistics mutually consistent.
    pub fn capture_snapshot(&self) -> TableSnapshot {
        TableSnapshot::capture(
            self.epoch.meta,
            self.row_count,
            &self.map,
            &self.cache,
            &self.stats,
        )
    }

    /// Cheap progress signature over the adaptive structures: write-behind
    /// compares it against [`Self::last_snapshot_sig`] and skips the save
    /// when a query grew nothing. Collisions only cost a skipped (or an
    /// extra) save — never a wrong answer, since the loader re-validates
    /// everything.
    pub fn snapshot_signature(&self) -> u64 {
        let mut buf = Vec::with_capacity(128);
        let mut put = |v: u64| buf.extend_from_slice(&v.to_le_bytes());
        put(self.epoch.meta.len);
        put(self.epoch.meta.head_hash);
        put(self.map.row_index().starts().len() as u64);
        put(u64::from(self.map.row_index().is_complete()));
        put(self.map.bytes_used() as u64);
        put(self.map.line_counts().entries().len() as u64);
        put(self.map.chunks().len() as u64);
        for c in self.map.chunks() {
            put(c.attrs().len() as u64);
            put(c.rows() as u64);
        }
        put(self.cache.bytes_used() as u64);
        for (attr, rows) in self.cache.resident() {
            put(attr as u64);
            put(rows as u64);
        }
        for attr in self.stats.covered_attrs() {
            put(attr as u64);
            put(self.stats.observed_upto(attr));
        }
        put(self.row_count.map_or(u64::MAX, |n| n));
        fnv1a(&buf)
    }

    /// Capture the Figure 2 monitoring panel.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            map_bytes: self.map.bytes_used(),
            map_budget: self.map.policy().budget_bytes,
            map_utilization: self.map.utilization(),
            map_chunks: self
                .map
                .chunks()
                .iter()
                .map(|c| ChunkInfo {
                    attrs: c.attrs().to_vec(),
                    rows: c.rows(),
                    bytes: c.footprint(),
                })
                .collect(),
            row_index_bytes: self.map.row_index().footprint(),
            map_installs: self.map.metrics().installs,
            map_evictions: self.map.metrics().evictions,
            cache_bytes: self.cache.bytes_used(),
            cache_budget: self.cache.policy().budget_bytes,
            cache_utilization: self.cache.utilization(),
            cache_resident: self.cache.resident(),
            cache_hit_ratio: self.cache.metrics().hit_ratio(),
            cache_evictions: self.cache.metrics().evictions,
            stats_attrs: self.stats.covered_attrs(),
            attr_access_counts: self
                .attr_access
                .iter()
                .enumerate()
                .map(|(a, &n)| (a, n))
                .collect(),
            row_count: self.row_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_rawcsv::GeneratorConfig;

    fn tmp_csv(rows: u64) -> (PathBuf, Schema) {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "nodb_table_{}_{}",
            rows,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let cfg = GeneratorConfig::uniform_ints(3, rows, 1);
        cfg.generate_file(&p).unwrap();
        (p, cfg.schema())
    }

    #[test]
    fn register_touches_no_data() {
        let (p, schema) = tmp_csv(100);
        let t = RawTable::register(&p, schema, false, &NoDbConfig::default()).unwrap();
        assert!(t.map.chunks().is_empty());
        assert_eq!(t.cache.bytes_used(), 0);
        assert!(t.row_count.is_none());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn replace_invalidates_everything() {
        let (p, schema) = tmp_csv(50);
        let mut t = RawTable::register(&p, schema, false, &NoDbConfig::default()).unwrap();
        t.row_count = Some(50);
        std::fs::write(&p, "9,9,9\n").unwrap();
        let change = t.check_updates().unwrap();
        assert_eq!(change, EpochChange::Rewritten);
        assert!(t.row_count.is_none());
        assert_eq!(t.generation, 1, "quarantine bumps the generation");
        assert_eq!(t.epoch.meta.len, 6, "epoch re-captured from the new file");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn truncation_quarantines_everything() {
        // Big enough that the 4 KiB head window is a strict prefix —
        // otherwise the chop below also changes the head and classifies as
        // a rewrite (same quarantine, different label).
        let (p, schema) = tmp_csv(2000);
        let mut t = RawTable::register(&p, schema, false, &NoDbConfig::default()).unwrap();
        t.row_count = Some(2000);
        // Chop the file to a prefix (at whatever byte; head stays intact).
        let content = std::fs::read(&p).unwrap();
        std::fs::write(&p, &content[..content.len() / 2]).unwrap();
        let change = t.check_updates().unwrap();
        assert!(matches!(change, EpochChange::Truncated { .. }));
        assert!(t.row_count.is_none());
        assert!(t.map.chunks().is_empty());
        assert_eq!(t.cache.bytes_used(), 0);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn append_keeps_prefix_state() {
        let (p, schema) = tmp_csv(50);
        let cfg_for_append = GeneratorConfig::uniform_ints(3, 50, 1);
        let mut t = RawTable::register(&p, schema, false, &NoDbConfig::default()).unwrap();
        t.row_count = Some(50);
        cfg_for_append.append_rows(&p, 10).unwrap();
        let old_fence = t.epoch.trusted_len;
        let change = t.check_updates().unwrap();
        assert_eq!(
            change,
            EpochChange::Appended {
                old_trusted_len: old_fence
            },
            "replay starts at the old torn-row fence"
        );
        assert!(t.row_count.is_none(), "count must be re-learned");
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn snapshot_starts_empty() {
        let (p, schema) = tmp_csv(10);
        let t = RawTable::register(&p, schema, false, &NoDbConfig::default()).unwrap();
        let s = t.snapshot();
        assert_eq!(s.map_bytes, 0);
        assert_eq!(s.cache_bytes, 0);
        assert!(s.stats_attrs.is_empty());
        std::fs::remove_file(p).unwrap();
    }
}
