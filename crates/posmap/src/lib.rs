//! # nodb-posmap — the Adaptive Positional Map (paper §3.1)
//!
//! The positional map is the paper's central auxiliary structure: low-level
//! metadata about *where attributes live inside the raw file*, built
//! incrementally as a side effect of query tokenization and used by later
//! queries to jump (nearly) directly to the bytes they need.
//!
//! Key behaviours reproduced here:
//!
//! * **Incremental population** — the map starts empty; every query that
//!   tokenizes rows feeds a [`chunk::ChunkBuilder`], and the finished chunk
//!   is installed when the scan ends.
//! * **Chunked combinations** — attributes accessed together are stored
//!   together, one chunk per combination ("combinations of attributes used
//!   in the same query … are stored together in chunks").
//! * **LRU under a storage budget** — installing a chunk under memory
//!   pressure evicts least-recently-used chunks ("some attributes may no
//!   longer be relevant and are dropped by the LRU policy").
//! * **Distance-triggered combination indexing** — whether a query's
//!   attribute set deserves its own chunk is decided during access planning
//!   ("the default setting is that if all requested attributes for a query
//!   belong in different chunks, then the new combination is indexed"),
//!   configurable via [`policy::CombinationTrigger`].
//! * **Nearest-anchor exploitation** — for an attribute that is not indexed,
//!   the map returns the closest indexed attribute *to its left* so the
//!   tokenizer can resume mid-tuple instead of rescanning the prefix
//!   ("jump to the exact position of the file or as close as possible").
//!
//! Positions are stored as `u16` offsets relative to each tuple's line start;
//! the line starts themselves (the *row index*) are shared by all chunks.
//! This keeps the map an order of magnitude smaller than absolute `u64`
//! positions — the representation choice DESIGN.md calls out for ablation.

pub mod chunk;
pub mod map;
pub mod policy;

pub use chunk::{Chunk, ChunkBuilder, ChunkId, NO_OFFSET};
pub use map::{AccessPlan, AttrSource, LineCountMemo, MapMetrics, PositionalMap, RowIndex};
pub use policy::{CombinationTrigger, MapPolicy};
