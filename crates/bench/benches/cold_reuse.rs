//! Cold-scan cache-reuse benchmark — the two-phase pre-count's acceptance
//! measurement (ISSUE 3).
//!
//! Configuration is cache-only (positional map off), so there is never a
//! row index and *every* rescan runs the cold byte-partitioned path. A
//! tight cache budget makes the first query cache roughly half the rows of
//! the two requested columns; the measured rescans then come in three
//! flavors at each thread count:
//!
//! * `cold_reuse_cached` — rescan against the partially-cached table with
//!   the pre-count on: workers learn their global row bases from the (memoized)
//!   newline counts, serve the covered prefix from the cache, and slices
//!   wholly inside it never open the file.
//! * `cold_reuse_no_precount` — same partially-cached table, pre-count off:
//!   the pre-ISSUE behavior, re-parsing everything from raw bytes.
//! * `cold_reuse_cold` — a fresh registration per iteration: fully cold.
//!
//! Acceptance: `cached` beats `cold` at equal thread counts. The records
//! land in `BENCH_cold_reuse.json` (merged by configuration key, so CI's
//! reduced row count coexists with full-size local runs) and feed the CI
//! perf gate. `NODB_BENCH_ROWS` overrides the row count.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nodb_bench::report::{update_bench_json, BenchRecord};
use nodb_bench::workload::scratch_dir;
use nodb_core::{NoDb, NoDbConfig};
use nodb_rawcsv::{GeneratorConfig, Schema};

const COLS: usize = 8;

fn rows() -> u64 {
    std::env::var("NODB_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Cache-only cold configuration: every rescan is byte-partitioned.
fn config(rows: u64, threads: usize, precount: bool) -> NoDbConfig {
    NoDbConfig {
        enable_positional_map: false,
        enable_cache: true,
        enable_stats: false,
        selective_tokenizing: true,
        detailed_timing: false,
        detect_updates: false,
        scan_threads: threads,
        cold_precount: precount,
        // ~60% of the two requested int columns (16 bytes buffered per row
        // in the cache's accounting).
        cache_budget_bytes: (rows as usize) * 16 * 6 / 10,
        ..NoDbConfig::default()
    }
}

fn fresh_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig) -> NoDb {
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema.clone(), false)
        .unwrap();
    db
}

/// A db whose cache holds the partial prefix the budget admits.
fn warmed_db(path: &PathBuf, schema: &Schema, cfg: NoDbConfig, sql: &str) -> NoDb {
    let db = fresh_db(path, schema, cfg);
    db.query(sql).unwrap();
    db.query(sql).unwrap(); // second pass memoizes the pre-count boundaries
    db
}

fn bench_cold_reuse(c: &mut Criterion) {
    let rows = rows();
    let dir = scratch_dir("bench_cold_reuse");
    let gen = GeneratorConfig::uniform_ints(COLS, rows, 0xC01D);
    let mut path = dir.clone();
    path.push("data.csv");
    gen.generate_file(&path).expect("generate dataset");
    let schema = gen.schema();
    let sql = "SELECT c1, c5 FROM t WHERE c5 < 300000000";

    let expect = fresh_db(&path, &schema, config(rows, 1, true))
        .query(sql)
        .unwrap()
        .len();

    let mut group = c.benchmark_group(format!("cold_reuse_{rows}_rows"));
    group.sample_size(4);
    let samples: RefCell<Vec<BenchRecord>> = RefCell::new(Vec::new());
    for threads in [2usize, 4, 8] {
        type MkDb<'a> = Box<dyn Fn() -> NoDb + 'a>;
        let variants: [(&str, MkDb); 3] = [
            (
                "cold_reuse_cached",
                Box::new(|| warmed_db(&path, &schema, config(rows, threads, true), sql)),
            ),
            (
                "cold_reuse_no_precount",
                Box::new(|| warmed_db(&path, &schema, config(rows, threads, false), sql)),
            ),
            (
                "cold_reuse_cold",
                Box::new(|| fresh_db(&path, &schema, config(rows, threads, true))),
            ),
        ];
        for (name, mk) in variants {
            let durations = RefCell::new(Vec::new());
            group.bench_function(format!("{name}_threads_{threads}"), |b| {
                b.iter_batched(
                    &mk,
                    |db| {
                        let t = Instant::now();
                        let r = db.query(sql).unwrap();
                        durations.borrow_mut().push(t.elapsed());
                        assert_eq!(
                            r.len(),
                            expect,
                            "{name} threads={threads} changed the answer"
                        );
                        black_box(r.len())
                    },
                    BatchSize::LargeInput,
                )
            });
            samples.borrow_mut().push(BenchRecord::from_samples(
                name,
                threads,
                rows,
                &durations.borrow(),
            ));
        }
    }
    group.finish();

    let records = samples.into_inner();
    let mut out = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    out.pop(); // crates/
    out.pop(); // workspace root
    out.push("BENCH_cold_reuse.json");
    update_bench_json(&out, &records).expect("write BENCH_cold_reuse.json");
    for threads in [2usize, 4, 8] {
        let at = |name: &str| {
            records
                .iter()
                .find(|r| r.name == name && r.scan_threads == threads)
                .map(|r| r.mean_ms)
                .unwrap_or(f64::NAN)
        };
        let (cached, noprec, cold) = (
            at("cold_reuse_cached"),
            at("cold_reuse_no_precount"),
            at("cold_reuse_cold"),
        );
        println!(
            "threads={threads:<2} cached {cached:>9.2} ms  no-precount {noprec:>9.2} ms  \
             fully-cold {cold:>9.2} ms  (reuse speedup {:.2}x)",
            cold / cached
        );
    }
    println!("wrote {}", out.display());

    std::fs::remove_dir_all(dir).ok();
}

criterion_group!(benches, bench_cold_reuse);
criterion_main!(benches);
