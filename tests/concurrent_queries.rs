//! Concurrency property tests for the shared table registry: N threads × M
//! queries against one `NoDb` instance must produce, query for query, the
//! results a sequential run produces, and must leave the table's adaptive
//! structures — positional map, row index, cache contents, statistics —
//! exactly where a *sequential replay* of the same query set leaves them.
//!
//! Why this is a meaningful invariant: every query's side-effect merge is
//! frontier-based (row-index replay, chunk subsumption, cache admission
//! from current coverage, statistics observation frontiers), so any
//! interleaving of full-scan merges converges to the state of running the
//! distinct queries once each. The tests run the same workload through both
//! paths and diff the state field by field.
//!
//! `NODB_TEST_SCAN_THREADS` pins `scan_threads` (CI runs 1 and 4 on top of
//! the default auto-detect); unset, both 1 and 4 are exercised.

use std::sync::Arc;

use nodb_repro::core::{NoDb, NoDbConfig};
use nodb_repro::prelude::*;

mod common;
use common::assert_same_state;

fn scratch(tag: &str, n: u64) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nodb_conc_{tag}_{n}_{}", std::process::id()));
    p
}

/// Thread counts to drive `NoDbConfig::scan_threads` with: the pinned value
/// from `NODB_TEST_SCAN_THREADS`, or {1, 4}.
fn scan_thread_counts() -> Vec<usize> {
    match std::env::var("NODB_TEST_SCAN_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) => vec![n],
        None => vec![1, 4],
    }
}

/// Repetition multiplier for the racy tests: `NODB_TEST_STRESS=k` runs
/// `4k`× the default rounds (CI's steal-race stress job pins 8 scan threads
/// and sets it to 1; unset = 1×).
fn stress_rounds() -> u64 {
    std::env::var("NODB_TEST_STRESS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|v| v.max(1) * 4)
        .unwrap_or(1)
}

/// Read-ahead depth: `NODB_TEST_READAHEAD` pins `io_readahead_blocks` (the
/// CI stress job runs 8); unset, the config default applies.
fn test_readahead() -> usize {
    std::env::var("NODB_TEST_READAHEAD")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(NoDbConfig::default().io_readahead_blocks)
}

fn mk_db(path: &std::path::Path, schema: Schema, scan_threads: usize) -> NoDb {
    let cfg = NoDbConfig {
        scan_threads,
        io_readahead_blocks: test_readahead(),
        ..NoDbConfig::default()
    };
    let mut db = NoDb::new(cfg);
    db.register_csv_with_schema("t", path, schema, false)
        .unwrap();
    db
}

/// The acceptance invariant: two threads issuing queries against the same
/// registered table concurrently return results byte-identical to running
/// them sequentially.
#[test]
fn two_concurrent_queries_match_sequential() {
    let cols = 5;
    let gen = GeneratorConfig::uniform_ints(cols, 800, 0xC0C0);
    let path = scratch("pair", 0);
    gen.generate_file(&path).unwrap();
    let q1 = "SELECT c0, c2 FROM t WHERE c1 < 600000000";
    let q2 = "SELECT c3 FROM t WHERE c4 >= 250000000";

    for threads in scan_thread_counts() {
        // Sequential reference.
        let seq = mk_db(&path, gen.schema(), threads);
        let (e1, e2) = (seq.query(q1).unwrap(), seq.query(q2).unwrap());

        // Two threads, same shared instance, both cold.
        let db = Arc::new(mk_db(&path, gen.schema(), threads));
        let (r1, r2) = std::thread::scope(|s| {
            let d1 = Arc::clone(&db);
            let d2 = Arc::clone(&db);
            let h1 = s.spawn(move || d1.query(q1).unwrap());
            let h2 = s.spawn(move || d2.query(q2).unwrap());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert_eq!(r1, e1, "threads={threads}: q1 concurrent vs sequential");
        assert_eq!(r2, e2, "threads={threads}: q2 concurrent vs sequential");
        assert_same_state(&format!("threads={threads}"), &db, &seq, cols);
    }
    std::fs::remove_file(path).unwrap();
}

/// N threads × M passes over the same query set against one shared table:
/// every result equals the sequential answer, and the final positional map,
/// cache and statistics equal a sequential replay of the workload.
#[test]
fn thread_storm_equals_sequential_replay() {
    let cols = 6;
    let rows = 600;
    let gen = GeneratorConfig::uniform_ints(cols, rows, 0x57011);
    let path = scratch("storm", 0);
    gen.generate_file(&path).unwrap();
    let queries: Vec<String> = vec![
        "SELECT c1 FROM t WHERE c2 < 500000000".to_string(),
        "SELECT c3, c1 FROM t".to_string(),
        "SELECT COUNT(*) FROM t WHERE c2 >= 500000000".to_string(),
        "SELECT c5 FROM t WHERE c0 < 900000000".to_string(),
    ];

    for threads in scan_thread_counts() {
        // Sequential replay: the same workload, one query at a time.
        let seq = mk_db(&path, gen.schema(), threads);
        let mut expect = Vec::new();
        for _pass in 0..2 {
            for q in &queries {
                expect.push(seq.query(q).unwrap());
            }
        }

        let db = Arc::new(mk_db(&path, gen.schema(), threads));
        let n_clients = 4;
        let results: Vec<Vec<QueryResult>> = std::thread::scope(|s| {
            (0..n_clients)
                .map(|_| {
                    let db = Arc::clone(&db);
                    let queries = queries.clone();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for _pass in 0..2 {
                            for q in &queries {
                                out.push(db.query(q).unwrap());
                            }
                        }
                        out
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });

        for (c, client) in results.iter().enumerate() {
            assert_eq!(
                client.len(),
                expect.len(),
                "threads={threads} client {c}: result count"
            );
            for (qi, r) in client.iter().enumerate() {
                assert_eq!(
                    r, &expect[qi],
                    "threads={threads} client {c} query {qi}: concurrent result"
                );
            }
        }
        assert_same_state(&format!("threads={threads} storm"), &db, &seq, cols);
        // Row count learned exactly once, identically.
        assert_eq!(db.snapshot("t").unwrap().row_count, Some(rows));
        assert_eq!(seq.snapshot("t").unwrap().row_count, Some(rows));
    }
    std::fs::remove_file(path).unwrap();
}

/// Concurrent queries with *disjoint* attribute sets racing their cold
/// scans: both stage full-table side effects; frontier-based merging must
/// land the union of their structures, same as any sequential order.
#[test]
fn racing_cold_scans_merge_to_union_state() {
    let cols = 6;
    let gen = GeneratorConfig::uniform_ints(cols, 700, 0xD15);
    let path = scratch("union", 0);
    gen.generate_file(&path).unwrap();
    let queries = ["SELECT c0 FROM t", "SELECT c2 FROM t", "SELECT c4 FROM t"];

    for threads in scan_thread_counts() {
        let seq = mk_db(&path, gen.schema(), threads);
        for q in &queries {
            seq.query(q).unwrap();
        }

        let db = Arc::new(mk_db(&path, gen.schema(), threads));
        std::thread::scope(|s| {
            for q in &queries {
                let db = Arc::clone(&db);
                s.spawn(move || db.query(q).unwrap());
            }
        });
        assert_same_state(&format!("threads={threads} union"), &db, &seq, cols);
    }
    std::fs::remove_file(path).unwrap();
}

/// Steal-race stress: concurrent clients rescanning a table whose cache
/// holds only a partial prefix (tight budget, positional map off, so every
/// rescan is a cold byte-partitioned scan). Each scan runs the two-phase
/// pre-count and the work-stealing slice queue, so N clients × 8 workers ×
/// stealing exercises every claim interleaving; results and final state
/// must still equal the sequential replay. `NODB_TEST_STRESS` multiplies
/// the rounds.
#[test]
fn racing_cold_rescans_with_partial_cache_and_stealing() {
    let cols = 4;
    let gen = GeneratorConfig::uniform_ints(cols, 900, 0x57EA1);
    let path = scratch("steal", 0);
    gen.generate_file(&path).unwrap();
    let sql = "SELECT c1 FROM t WHERE c2 < 700000000";
    let mk = |threads: usize| {
        let cfg = NoDbConfig {
            enable_positional_map: false,
            cache_budget_bytes: 2_500, // partial prefix only
            scan_threads: threads,
            ..NoDbConfig::default()
        };
        let mut db = NoDb::new(cfg);
        db.register_csv_with_schema("t", &path, gen.schema(), false)
            .unwrap();
        db
    };

    for round in 0..stress_rounds() {
        for threads in scan_thread_counts() {
            let seq = mk(threads.max(2));
            let expect = seq.query(sql).unwrap();
            seq.query(sql).unwrap(); // sequential replay of the rescan

            let db = Arc::new(mk(threads.max(2)));
            db.query(sql).unwrap(); // populate the partial cache
            let results: Vec<QueryResult> = std::thread::scope(|s| {
                (0..4)
                    .map(|_| {
                        let db = Arc::clone(&db);
                        s.spawn(move || db.query(sql).unwrap())
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            for (c, r) in results.iter().enumerate() {
                assert_eq!(
                    r, &expect,
                    "round {round} threads {threads} client {c}: rescan result"
                );
            }
            assert_same_state(
                &format!("round {round} threads {threads} steal-race"),
                &db,
                &seq,
                cols,
            );
        }
    }
    std::fs::remove_file(path).unwrap();
}

/// Telemetry under concurrency: per-query hit/miss tallies ride with each
/// scan, so a warm rerun's report shows its own hits even while other
/// threads hammer the same table, and the cache's lifetime totals equal the
/// sum of what the individual queries saw.
#[test]
fn telemetry_tallies_survive_concurrency() {
    let cols = 4;
    let rows = 300u64;
    let gen = GeneratorConfig::uniform_ints(cols, rows, 0x7E1E);
    let path = scratch("telemetry", 0);
    gen.generate_file(&path).unwrap();
    let sql = "SELECT c1, c2 FROM t";

    for threads in scan_thread_counts() {
        let db = Arc::new(mk_db(&path, gen.schema(), threads));
        db.query(sql).unwrap(); // cold: populates the cache
        let n_clients = 4u64;
        let per_query: Vec<(u64, u64)> = std::thread::scope(|s| {
            (0..n_clients)
                .map(|_| {
                    let db = Arc::clone(&db);
                    s.spawn(move || {
                        db.query(sql).unwrap();
                        let rep = db.admin().last_report().unwrap();
                        (rep.cache_hits, rep.cache_misses)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Every warm rerun is fully cached: 2 attrs × rows hits, no misses.
        // (last_report is last-writer-wins, but each tally here is read
        // after the thread's own query, and every query has the same shape,
        // so the values are deterministic.)
        for (hits, misses) in &per_query {
            assert_eq!(*hits, 2 * rows, "threads={threads}: per-query hits");
            assert_eq!(*misses, 0, "threads={threads}: per-query misses");
        }
        // Lifetime totals: no tally dropped, none double-counted.
        let h = db.table_handle("t").unwrap();
        let total_hits = h.read().cache().metrics().hits;
        assert_eq!(
            total_hits,
            n_clients * 2 * rows,
            "threads={threads}: lifetime hit total"
        );
    }
    std::fs::remove_file(path).unwrap();
}
