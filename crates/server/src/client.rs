//! Blocking TCP client for nodb-server — the REPL's network mode, the CI
//! smoke check and the integration tests all speak through this.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame};

/// One response: the status line and the body frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `OK …` or `ERR …`.
    pub status: String,
    /// Rendered payload (result rows, panel text, …); may be empty.
    pub body: String,
}

impl Response {
    /// True when the status frame starts with `OK`.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("OK")
    }
}

/// A connected nodb-server client. One request in flight at a time
/// (requests and responses strictly alternate on the wire).
pub struct NoDbClient {
    stream: TcpStream,
}

impl NoDbClient {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NoDbClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(NoDbClient { stream })
    }

    /// Like [`Self::connect`] with a connect timeout (tests / impatient
    /// tooling). Needs a resolved address.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> io::Result<NoDbClient> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(NoDbClient { stream })
    }

    /// Send one raw command line and read the two-frame response.
    pub fn command(&mut self, line: &str) -> io::Result<Response> {
        write_frame(&mut self.stream, line)?;
        let status = read_frame(&mut self.stream)?.ok_or_else(closed)?;
        let body = read_frame(&mut self.stream)?.ok_or_else(closed)?;
        Ok(Response { status, body })
    }

    /// Run one SQL statement (`QUERY <sql>`).
    pub fn query(&mut self, sql: &str) -> io::Result<Response> {
        self.command(&format!("QUERY {sql}"))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<bool> {
        Ok(self.command("PING")?.is_ok())
    }

    /// Tell the server this connection is done (the server closes after
    /// acknowledging).
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.command("QUIT")?;
        Ok(())
    }

    /// The underlying stream (tests use this to simulate abrupt
    /// disconnects via `shutdown`).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Send a request frame WITHOUT reading the response — only useful for
    /// tests that drop the connection mid-query to exercise the server's
    /// disconnect watchdog.
    pub fn send_only(&mut self, line: &str) -> io::Result<()> {
        write_frame(&mut self.stream, line)
    }
}

fn closed() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed the connection mid-response",
    )
}
