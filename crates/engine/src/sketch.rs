//! Extraction of [`PredicateSketch`]es from resolved conjuncts.
//!
//! The optimizer orders WHERE conjuncts by estimated selectivity (§3.3: the
//! statistics help "ordering operators such as joins and selections"). To do
//! that it reduces each conjunct to a sketch — `attr ⊙ constant` shapes the
//! statistics store can price. Anything more exotic is [`Opaque`] and gets a
//! textbook default.
//!
//! [`Opaque`]: PredicateSketch::Opaque

use nodb_rawcsv::Datum;
use nodb_sqlparse::ast::BinOp;
use nodb_stats::PredicateSketch;

use crate::expr::RExpr;

/// Split a predicate into top-level AND conjuncts.
pub fn split_conjuncts(expr: &RExpr, out: &mut Vec<RExpr>) {
    match expr {
        RExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Reassemble conjuncts into one AND tree (left-deep, in slice order).
pub fn join_conjuncts(conjuncts: &[RExpr]) -> Option<RExpr> {
    let mut iter = conjuncts.iter().cloned();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, c| RExpr::Binary {
        op: BinOp::And,
        left: Box::new(acc),
        right: Box::new(c),
    }))
}

/// Sketch one conjunct as `(column, sketch)` when it has a priceable shape.
///
/// The column index is in whatever space `expr` is resolved in; callers
/// translate to file attributes before consulting statistics.
pub fn sketch_conjunct(expr: &RExpr) -> Option<(usize, PredicateSketch)> {
    match expr {
        RExpr::Binary { op, left, right } if op.is_comparison() => {
            // col ⊙ const or const ⊙ col (flip the operator).
            match (&**left, &**right) {
                (RExpr::Col(c), RExpr::Const(v)) => Some((*c, cmp_sketch(*op, v.clone()))),
                (RExpr::Const(v), RExpr::Col(c)) => Some((*c, cmp_sketch(flip(*op), v.clone()))),
                _ => None,
            }
        }
        RExpr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => match (&**expr, &**lo, &**hi) {
            (RExpr::Col(c), RExpr::Const(l), RExpr::Const(h)) => {
                Some((*c, PredicateSketch::Between(l.clone(), h.clone())))
            }
            _ => None,
        },
        RExpr::InList {
            expr,
            list,
            negated: false,
        } => match &**expr {
            RExpr::Col(c) if list.iter().all(|e| matches!(e, RExpr::Const(_))) => {
                Some((*c, PredicateSketch::InList(list.len())))
            }
            _ => None,
        },
        RExpr::IsNull { expr, negated } => match &**expr {
            RExpr::Col(c) => Some((
                *c,
                if *negated {
                    PredicateSketch::IsNotNull
                } else {
                    PredicateSketch::IsNull
                },
            )),
            _ => None,
        },
        RExpr::Like {
            expr,
            pattern,
            negated: false,
        } => match (&**expr, pattern.as_prefix()) {
            (RExpr::Col(c), Some(p)) => Some((*c, PredicateSketch::StrPrefix(p.to_string()))),
            _ => None,
        },
        _ => None,
    }
}

fn cmp_sketch(op: BinOp, v: Datum) -> PredicateSketch {
    match op {
        BinOp::Eq => PredicateSketch::Eq(v),
        BinOp::NotEq => PredicateSketch::NotEq(v),
        BinOp::Lt => PredicateSketch::Lt(v),
        BinOp::Le => PredicateSketch::Le(v),
        BinOp::Gt => PredicateSketch::Gt(v),
        BinOp::Ge => PredicateSketch::Ge(v),
        _ => PredicateSketch::Opaque,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_cmp(op: BinOp, c: usize, v: i64) -> RExpr {
        RExpr::Binary {
            op,
            left: Box::new(RExpr::Col(c)),
            right: Box::new(RExpr::Const(Datum::Int(v))),
        }
    }

    #[test]
    fn split_and_rejoin_round_trips() {
        let e = RExpr::Binary {
            op: BinOp::And,
            left: Box::new(col_cmp(BinOp::Gt, 0, 1)),
            right: Box::new(RExpr::Binary {
                op: BinOp::And,
                left: Box::new(col_cmp(BinOp::Lt, 1, 2)),
                right: Box::new(col_cmp(BinOp::Eq, 2, 3)),
            }),
        };
        let mut parts = Vec::new();
        split_conjuncts(&e, &mut parts);
        assert_eq!(parts.len(), 3);
        let rejoined = join_conjuncts(&parts).unwrap();
        let mut parts2 = Vec::new();
        split_conjuncts(&rejoined, &mut parts2);
        assert_eq!(parts, parts2);
    }

    #[test]
    fn or_is_one_conjunct() {
        let e = RExpr::Binary {
            op: BinOp::Or,
            left: Box::new(col_cmp(BinOp::Gt, 0, 1)),
            right: Box::new(col_cmp(BinOp::Lt, 1, 2)),
        };
        let mut parts = Vec::new();
        split_conjuncts(&e, &mut parts);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn sketches_comparison_shapes() {
        let (c, s) = sketch_conjunct(&col_cmp(BinOp::Lt, 3, 10)).unwrap();
        assert_eq!(c, 3);
        assert_eq!(s, PredicateSketch::Lt(Datum::Int(10)));

        // Flipped: 10 > col3  ≡  col3 < 10.
        let flipped = RExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(RExpr::Const(Datum::Int(10))),
            right: Box::new(RExpr::Col(3)),
        };
        let (c2, s2) = sketch_conjunct(&flipped).unwrap();
        assert_eq!(c2, 3);
        assert_eq!(s2, PredicateSketch::Lt(Datum::Int(10)));
    }

    #[test]
    fn sketches_between_in_isnull_prefix() {
        let between = RExpr::Between {
            expr: Box::new(RExpr::Col(1)),
            lo: Box::new(RExpr::Const(Datum::Int(1))),
            hi: Box::new(RExpr::Const(Datum::Int(9))),
            negated: false,
        };
        assert!(matches!(
            sketch_conjunct(&between),
            Some((1, PredicateSketch::Between(_, _)))
        ));

        let inlist = RExpr::InList {
            expr: Box::new(RExpr::Col(2)),
            list: vec![RExpr::Const(Datum::Int(1)), RExpr::Const(Datum::Int(2))],
            negated: false,
        };
        assert!(matches!(
            sketch_conjunct(&inlist),
            Some((2, PredicateSketch::InList(2)))
        ));

        let isnull = RExpr::IsNull {
            expr: Box::new(RExpr::Col(0)),
            negated: false,
        };
        assert!(matches!(
            sketch_conjunct(&isnull),
            Some((0, PredicateSketch::IsNull))
        ));

        let like = RExpr::Like {
            expr: Box::new(RExpr::Col(4)),
            pattern: crate::expr::LikePattern::compile("ab%"),
            negated: false,
        };
        assert!(matches!(
            sketch_conjunct(&like),
            Some((4, PredicateSketch::StrPrefix(p))) if p == "ab"
        ));
    }

    #[test]
    fn col_to_col_is_unsketchable() {
        let e = RExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(RExpr::Col(0)),
            right: Box::new(RExpr::Col(1)),
        };
        assert!(sketch_conjunct(&e).is_none());
    }
}
